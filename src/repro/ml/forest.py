"""Random forests built on the CART trees of :mod:`repro.ml.tree`.

The paper's model of choice: "a random forest (with 50 estimators and
using the Gini impurity to evaluate the quality of splits), due to its
effectiveness in many ODA use cases as well as its robustness against
over-fitting".  Defaults follow scikit-learn 0.20 semantics: bootstrap
sampling, ``max_features="sqrt"`` for classification and all features for
regression.

Prediction is **batched across the whole forest**: at fit time every
tree's flat node arrays are stacked into ``(n_trees, max_nodes)``
matrices (leaf values pre-aligned onto the forest's class set, so the
per-call ``np.searchsorted`` of the old path is gone), and a single
lockstep walk advances every ``(sample, tree)`` pair together instead of
running 50 sequential per-tree traversals.  Per-tree accumulation stays
sequential, so the batched probabilities are bit-identical to the
per-tree loop.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]

_LEAF = -1


class _ForestStack:
    """Concatenated node arrays of a fitted forest for lockstep
    prediction.

    Every tree's flat arrays are laid end to end and the child pointers
    are rebased to *absolute* node indices, so the frontier walk below
    needs only contiguous 1-D gathers — no per-tree loop and no 2-D
    fancy indexing on the hot path.
    """

    __slots__ = ("n_trees", "base", "feature", "threshold", "left",
                 "right", "values")

    def __init__(self, trees, values: list[np.ndarray]):
        self.n_trees = len(trees)
        sizes = np.array([t._feature.shape[0] for t in trees], dtype=np.intp)
        self.base = np.concatenate(([0], np.cumsum(sizes)))[:-1]
        self.feature = np.concatenate([t._feature for t in trees])
        self.threshold = np.concatenate([t._threshold for t in trees])
        # Rebase child links; leaf markers stay negative.
        self.left = np.concatenate(
            [np.where(t._left == _LEAF, _LEAF, t._left + b)
             for t, b in zip(trees, self.base)]
        )
        self.right = np.concatenate(
            [np.where(t._right == _LEAF, _LEAF, t._right + b)
             for t, b in zip(trees, self.base)]
        )
        self.values = np.concatenate(values, axis=0)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Absolute leaf index per (sample, tree), shape ``(n, n_trees)``.

        Every pair advances one level per pass; pairs that reach a leaf
        drop out of the frontier.
        """
        n, n_feat = X.shape
        n_trees = self.n_trees
        cur = np.tile(self.base, n)
        x_base = np.repeat(np.arange(n, dtype=np.intp) * n_feat, n_trees)
        x_flat = X.ravel()
        feature, threshold = self.feature, self.threshold
        left, right = self.left, self.right
        alive = np.flatnonzero(feature[cur] != _LEAF)
        while alive.size:
            c_a = cur[alive]
            f = feature[c_a]
            go_left = x_flat[x_base[alive] + f] <= threshold[c_a]
            nxt = np.where(go_left, left[c_a], right[c_a])
            cur[alive] = nxt
            alive = alive[feature[nxt] != _LEAF]
        return cur.reshape(n, n_trees)

    def accumulate(self, X: np.ndarray) -> np.ndarray:
        """Sum of per-tree leaf values, ``(n_samples, val_dim)``.

        The walk is batched; the accumulation loops over trees in fit
        order so the floating-point sum matches the sequential per-tree
        path bit for bit.
        """
        leaves = self.apply(X)
        per_tree = self.values[leaves]  # (n, n_trees, val_dim)
        acc = np.zeros((X.shape[0], self.values.shape[1]))
        for t in range(self.n_trees):
            acc += per_tree[:, t]
        return acc


class _BaseForest:
    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        bootstrap: bool = True,
        random_state: int | None = None,
        splitter: str = "exact",
        max_bins: int = 256,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.random_state = random_state
        self.splitter = splitter
        self.max_bins = max_bins
        self.estimators_: list = []
        self._stack: _ForestStack | None = None

    def _tree_factory(self, rng: np.random.Generator):
        raise NotImplementedError

    def _tree_values(self, tree) -> np.ndarray:
        """Leaf-value matrix of one tree, aligned for stacking."""
        raise NotImplementedError

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape[0] != X.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        m = X.shape[0]
        seeds = np.random.SeedSequence(self.random_state).spawn(self.n_estimators)
        self.estimators_ = []
        for seq in seeds:
            rng = np.random.default_rng(seq)
            if self.bootstrap:
                sample = rng.integers(0, m, size=m)
            else:
                sample = np.arange(m)
            tree = self._tree_factory(rng)
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
        self._stack = _ForestStack(
            self.estimators_,
            [self._tree_values(t) for t in self.estimators_],
        )

    @property
    def is_fitted(self) -> bool:
        return bool(self.estimators_)

    def _require_fit(self) -> None:
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")


class RandomForestClassifier(_BaseForest):
    """Bootstrap-aggregated Gini CART classifier (soft voting).

    Parameters mirror the paper's setup; ``max_features`` defaults to
    ``"sqrt"`` as in scikit-learn's classifier forests.  ``splitter``
    and ``max_bins`` forward to the trees (``"hist"`` trades exact split
    placement for O(max_bins) scans per feature).
    """

    def __init__(self, n_estimators: int = 50, *, max_features="sqrt", **kw):
        super().__init__(n_estimators, max_features=max_features, **kw)

    def _tree_factory(self, rng: np.random.Generator) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=rng,
            splitter=self.splitter,
            max_bins=self.max_bins,
        )

    def _tree_values(self, tree) -> np.ndarray:
        # Trees trained on bootstrap samples may miss rare classes;
        # align their value columns onto the forest's class set once
        # here instead of per predict call.
        vals = np.zeros((tree._values.shape[0], self.classes_.shape[0]))
        cols = np.searchsorted(self.classes_, tree.classes_)
        vals[:, cols] = tree._values
        return vals

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self._class_index = {c: i for i, c in enumerate(self.classes_)}
        self._fit_forest(X, y)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean of per-tree leaf class frequencies (soft voting)."""
        self._require_fit()
        X = np.asarray(X, dtype=np.float64)
        proba = self._stack.accumulate(X)
        proba /= len(self.estimators_)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_with_proba(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Labels and class probabilities from one stacked-forest pass.

        Serving paths that need both (hard label for alerting, winning
        probability as confidence) would otherwise walk the forest twice
        — ``predict`` calls ``predict_proba`` internally.
        """
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)], proba

    # -- flat-array persistence ----------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array snapshot of the fitted forest.

        Every tree contributes its five node arrays plus its own class
        set (bootstrap trees may miss rare classes); the dict round-trips
        through ``np.savez`` and :meth:`from_arrays` to a forest whose
        predictions are bit-identical to the original.
        """
        self._require_fit()
        arrays: dict[str, np.ndarray] = {
            "classes": self.classes_,
            "n_trees": np.array([len(self.estimators_)], dtype=np.int64),
        }
        for i, tree in enumerate(self.estimators_):
            arrays[f"tree{i}_feature"] = tree._feature
            arrays[f"tree{i}_threshold"] = tree._threshold
            arrays[f"tree{i}_left"] = tree._left
            arrays[f"tree{i}_right"] = tree._right
            arrays[f"tree{i}_values"] = tree._values
            arrays[f"tree{i}_classes"] = tree.classes_
        return arrays

    @classmethod
    def from_arrays(cls, arrays) -> "RandomForestClassifier":
        """Rebuild a fitted forest from a :meth:`to_arrays` snapshot.

        ``arrays`` may be any mapping of name -> array (e.g. a loaded
        npz); node arrays are copied out so the rebuilt forest holds no
        references into a memory-mapped file.
        """
        n_trees = int(np.asarray(arrays["n_trees"])[0])
        forest = cls(n_estimators=n_trees)
        forest.classes_ = np.array(arrays["classes"])
        forest._class_index = {c: i for i, c in enumerate(forest.classes_)}
        trees = []
        for i in range(n_trees):
            tree = DecisionTreeClassifier()
            tree.classes_ = np.array(arrays[f"tree{i}_classes"])
            tree._feature = np.array(arrays[f"tree{i}_feature"], dtype=np.intp)
            tree._threshold = np.array(
                arrays[f"tree{i}_threshold"], dtype=np.float64
            )
            tree._left = np.array(arrays[f"tree{i}_left"], dtype=np.intp)
            tree._right = np.array(arrays[f"tree{i}_right"], dtype=np.intp)
            tree._values = np.array(arrays[f"tree{i}_values"], dtype=np.float64)
            tree._fitted = True
            trees.append(tree)
        forest.estimators_ = trees
        forest._stack = _ForestStack(
            trees, [forest._tree_values(t) for t in trees]
        )
        return forest


class RandomForestRegressor(_BaseForest):
    """Bootstrap-aggregated variance-reduction CART regressor.

    ``max_features`` defaults to one third of the features (Breiman's
    classic regression-forest recommendation) and ``min_samples_leaf`` to
    5, which keeps continuous-target trees from degenerating into one
    leaf per sample; both can be overridden.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_features=1 / 3,
        min_samples_leaf: int = 5,
        **kw,
    ):
        super().__init__(
            n_estimators,
            max_features=max_features,
            min_samples_leaf=min_samples_leaf,
            **kw,
        )

    def _tree_factory(self, rng: np.random.Generator) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=rng,
            splitter=self.splitter,
            max_bins=self.max_bins,
        )

    def _tree_values(self, tree) -> np.ndarray:
        return tree._values

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        self._fit_forest(X, np.asarray(y, dtype=np.float64))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fit()
        X = np.asarray(X, dtype=np.float64)
        acc = self._stack.accumulate(X)[:, 0]
        return acc / len(self.estimators_)

"""Cross-validation utilities (Section IV-A methodology).

The paper shuffles the feature sets, then applies "5-fold cross-validation
... using a stratified K-fold strategy: 4 of the 5 uniformly-sized folds
are used for training and 1 for testing, evaluating all possible
combinations."  This module provides :class:`KFold`,
:class:`StratifiedKFold`, a ``train_test_split`` helper and two
harness-level drivers that run a model factory across folds and return the
paper's ML scores.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.ml.metrics import ml_score_classification, ml_score_regression

__all__ = [
    "KFold",
    "StratifiedKFold",
    "train_test_split",
    "cross_validate_classifier",
    "cross_validate_regressor",
    "repeated_cross_validate_classifier",
    "repeated_cross_validate_regressor",
]

Split = tuple[np.ndarray, np.ndarray]


def _class_grouping(y_enc: np.ndarray, n_classes: int):
    """Per-class grouping of sample indices, reusable across repeats.

    Returns ``(order, starts, counts, ranks)``: ``order`` lists sample
    indices grouped by class (ascending within each class — exactly the
    concatenation of the per-class ``np.flatnonzero`` scans it
    replaces), ``starts``/``counts`` delimit the class slices and
    ``ranks`` is the within-class position of every slot of ``order``.
    """
    order = np.argsort(y_enc, kind="stable")
    counts = np.bincount(y_enc, minlength=n_classes)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    ranks = np.arange(y_enc.shape[0]) - np.repeat(starts, counts)
    return order, starts, counts, ranks


def _stratified_fold_ids(
    order: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    ranks: np.ndarray,
    n_splits: int,
    rng: np.random.Generator | None,
) -> np.ndarray:
    """Fold id per sample: round-robin within each (shuffled) class.

    Shuffling runs per class in class order on slices of a copy of
    ``order`` — the same RNG consumption as shuffling each class's
    member list separately, so fold membership is identical to the
    historical per-class loop for a fixed seed.
    """
    if rng is not None:
        order = order.copy()
        for c in range(counts.shape[0]):
            rng.shuffle(order[starts[c] : starts[c] + counts[c]])
    fold_of = np.empty(order.shape[0], dtype=np.intp)
    fold_of[order] = ranks % n_splits
    return fold_of


class KFold:
    """Plain K-fold splitter with optional shuffling."""

    def __init__(
        self,
        n_splits: int = 5,
        *,
        shuffle: bool = False,
        random_state: int | None = None,
    ):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[Split]:
        m = len(X)
        if m < self.n_splits:
            raise ValueError(
                f"cannot split {m} samples into {self.n_splits} folds"
            )
        indices = np.arange(m)
        if self.shuffle:
            np.random.default_rng(self.random_state).shuffle(indices)
        sizes = np.full(self.n_splits, m // self.n_splits, dtype=np.intp)
        sizes[: m % self.n_splits] += 1
        start = 0
        for size in sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


class StratifiedKFold:
    """K-fold that preserves per-class proportions in every fold."""

    def __init__(
        self,
        n_splits: int = 5,
        *,
        shuffle: bool = False,
        random_state: int | None = None,
    ):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, X, y) -> Iterator[Split]:
        y = np.asarray(y)
        m = y.shape[0]
        if len(X) != m:
            raise ValueError("X and y have inconsistent lengths")
        classes, y_enc = np.unique(y, return_inverse=True)
        order, starts, counts, ranks = _class_grouping(y_enc, classes.shape[0])
        smallest = counts.min()
        if smallest < self.n_splits:
            raise ValueError(
                f"the least populated class has {smallest} members, fewer "
                f"than n_splits={self.n_splits}"
            )
        rng = np.random.default_rng(self.random_state) if self.shuffle else None
        fold_of = _stratified_fold_ids(
            order, starts, counts, ranks, self.n_splits, rng
        )
        for fold in range(self.n_splits):
            test = np.flatnonzero(fold_of == fold)
            train = np.flatnonzero(fold_of != fold)
            yield train, test


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    random_state: int | None = None,
    stratify: np.ndarray | None = None,
):
    """Shuffle-split arrays into train/test partitions.

    Returns ``train_a, test_a`` for each input array, flattened in order
    (like scikit-learn).  With ``stratify``, per-class proportions are
    preserved in both partitions.
    """
    if not arrays:
        raise ValueError("need at least one array to split")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    m = len(arrays[0])
    for a in arrays[1:]:
        if len(a) != m:
            raise ValueError("all arrays must have the same length")
    rng = np.random.default_rng(random_state)
    if stratify is not None:
        strat = np.asarray(stratify)
        if strat.shape[0] != m:
            raise ValueError("stratify must match array length")
        # Group by class with one stable argsort, shuffle each class
        # slice (same RNG stream as the historical per-class loop), then
        # mark the first ceil-rounded share of every class as test in a
        # single slice assignment.
        _, strat_enc = np.unique(strat, return_inverse=True)
        order, starts, counts, ranks = _class_grouping(
            strat_enc, int(strat_enc.max()) + 1
        )
        for c in range(counts.shape[0]):
            rng.shuffle(order[starts[c] : starts[c] + counts[c]])
        n_test_per = np.maximum(
            1, np.round(counts * test_size).astype(np.intp)
        )
        test_mask = np.zeros(m, dtype=bool)
        test_mask[order] = ranks < np.repeat(n_test_per, counts)
        test_idx = np.flatnonzero(test_mask)
        train_idx = np.flatnonzero(~test_mask)
    else:
        order = rng.permutation(m)
        n_test = max(1, int(round(m * test_size)))
        test_idx = order[:n_test]
        train_idx = order[n_test:]
    out = []
    for a in arrays:
        a = np.asarray(a)
        out.append(a[train_idx])
        out.append(a[test_idx])
    return tuple(out)


def cross_validate_classifier(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_splits: int = 5,
    shuffle: bool = True,
    random_state: int | None = None,
    score_fn: Callable[[np.ndarray, np.ndarray], float] = ml_score_classification,
) -> np.ndarray:
    """Stratified K-fold scores of a freshly built classifier per fold."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    splitter = StratifiedKFold(
        n_splits=n_splits, shuffle=shuffle, random_state=random_state
    )
    scores = []
    for train, test in splitter.split(X, y):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(score_fn(y[test], model.predict(X[test])))
    return np.asarray(scores)


def cross_validate_regressor(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_splits: int = 5,
    shuffle: bool = True,
    random_state: int | None = None,
    score_fn: Callable[[np.ndarray, np.ndarray], float] = ml_score_regression,
) -> np.ndarray:
    """Plain K-fold scores of a freshly built regressor per fold."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    splitter = KFold(n_splits=n_splits, shuffle=shuffle, random_state=random_state)
    scores = []
    for train, test in splitter.split(X):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(score_fn(y[test], model.predict(X[test])))
    return np.asarray(scores)


def _repeat_seed(random_state: int | None, repeat: int) -> int | None:
    return None if random_state is None else random_state + repeat


def repeated_cross_validate_classifier(
    model_factory: Callable[[int | None], object],
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_splits: int = 5,
    repeats: int = 1,
    random_state: int | None = None,
    score_fn: Callable[[np.ndarray, np.ndarray], float] = ml_score_classification,
) -> np.ndarray:
    """Repeated stratified CV; returns scores of shape (repeats, n_splits).

    The per-class grouping of ``y`` is computed once and only the
    within-class shuffles are redrawn per repeat, so fold membership is
    identical to building a fresh shuffled ``StratifiedKFold`` with seed
    ``random_state + r`` for every repeat — without re-deriving the
    class partition ``repeats`` times.  ``model_factory`` receives that
    per-repeat seed.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    classes, y_enc = np.unique(y, return_inverse=True)
    order, starts, counts, ranks = _class_grouping(y_enc, classes.shape[0])
    if counts.min() < n_splits:
        raise ValueError(
            f"the least populated class has {counts.min()} members, fewer "
            f"than n_splits={n_splits}"
        )
    scores = np.empty((max(repeats, 1), n_splits))
    for r in range(max(repeats, 1)):
        seed = _repeat_seed(random_state, r)
        fold_of = _stratified_fold_ids(
            order, starts, counts, ranks, n_splits, np.random.default_rng(seed)
        )
        for fold in range(n_splits):
            test = np.flatnonzero(fold_of == fold)
            train = np.flatnonzero(fold_of != fold)
            model = model_factory(seed)
            model.fit(X[train], y[train])
            scores[r, fold] = score_fn(y[test], model.predict(X[test]))
    return scores


def repeated_cross_validate_regressor(
    model_factory: Callable[[int | None], object],
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_splits: int = 5,
    repeats: int = 1,
    random_state: int | None = None,
    score_fn: Callable[[np.ndarray, np.ndarray], float] = ml_score_regression,
) -> np.ndarray:
    """Repeated shuffled K-fold CV; scores of shape (repeats, n_splits).

    Fold sizes are computed once; each repeat redraws only the shuffle
    with seed ``random_state + r``, matching a fresh shuffled
    :class:`KFold` per repeat.  ``model_factory`` receives the seed.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    m = X.shape[0]
    if m < n_splits:
        raise ValueError(f"cannot split {m} samples into {n_splits} folds")
    sizes = np.full(n_splits, m // n_splits, dtype=np.intp)
    sizes[: m % n_splits] += 1
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    scores = np.empty((max(repeats, 1), n_splits))
    for r in range(max(repeats, 1)):
        seed = _repeat_seed(random_state, r)
        indices = np.arange(m)
        np.random.default_rng(seed).shuffle(indices)
        for fold in range(n_splits):
            lo, hi = bounds[fold], bounds[fold + 1]
            test = indices[lo:hi]
            train = np.concatenate([indices[:lo], indices[hi:]])
            model = model_factory(seed)
            model.fit(X[train], y[train])
            scores[r, fold] = score_fn(y[test], model.predict(X[test]))
    return scores

"""Cross-validation utilities (Section IV-A methodology).

The paper shuffles the feature sets, then applies "5-fold cross-validation
... using a stratified K-fold strategy: 4 of the 5 uniformly-sized folds
are used for training and 1 for testing, evaluating all possible
combinations."  This module provides :class:`KFold`,
:class:`StratifiedKFold`, a ``train_test_split`` helper and two
harness-level drivers that run a model factory across folds and return the
paper's ML scores.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.ml.metrics import ml_score_classification, ml_score_regression

__all__ = [
    "KFold",
    "StratifiedKFold",
    "train_test_split",
    "cross_validate_classifier",
    "cross_validate_regressor",
]

Split = tuple[np.ndarray, np.ndarray]


class KFold:
    """Plain K-fold splitter with optional shuffling."""

    def __init__(
        self,
        n_splits: int = 5,
        *,
        shuffle: bool = False,
        random_state: int | None = None,
    ):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[Split]:
        m = len(X)
        if m < self.n_splits:
            raise ValueError(
                f"cannot split {m} samples into {self.n_splits} folds"
            )
        indices = np.arange(m)
        if self.shuffle:
            np.random.default_rng(self.random_state).shuffle(indices)
        sizes = np.full(self.n_splits, m // self.n_splits, dtype=np.intp)
        sizes[: m % self.n_splits] += 1
        start = 0
        for size in sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


class StratifiedKFold:
    """K-fold that preserves per-class proportions in every fold."""

    def __init__(
        self,
        n_splits: int = 5,
        *,
        shuffle: bool = False,
        random_state: int | None = None,
    ):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, X, y) -> Iterator[Split]:
        y = np.asarray(y)
        m = y.shape[0]
        if len(X) != m:
            raise ValueError("X and y have inconsistent lengths")
        classes, y_enc = np.unique(y, return_inverse=True)
        smallest = np.bincount(y_enc).min()
        if smallest < self.n_splits:
            raise ValueError(
                f"the least populated class has {smallest} members, fewer "
                f"than n_splits={self.n_splits}"
            )
        rng = np.random.default_rng(self.random_state)
        # Assign a fold id to every sample, round-robin within each class.
        fold_of = np.empty(m, dtype=np.intp)
        for c in range(classes.shape[0]):
            members = np.flatnonzero(y_enc == c)
            if self.shuffle:
                rng.shuffle(members)
            fold_of[members] = np.arange(members.shape[0]) % self.n_splits
        for fold in range(self.n_splits):
            test = np.flatnonzero(fold_of == fold)
            train = np.flatnonzero(fold_of != fold)
            yield train, test


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    random_state: int | None = None,
    stratify: np.ndarray | None = None,
):
    """Shuffle-split arrays into train/test partitions.

    Returns ``train_a, test_a`` for each input array, flattened in order
    (like scikit-learn).  With ``stratify``, per-class proportions are
    preserved in both partitions.
    """
    if not arrays:
        raise ValueError("need at least one array to split")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    m = len(arrays[0])
    for a in arrays[1:]:
        if len(a) != m:
            raise ValueError("all arrays must have the same length")
    rng = np.random.default_rng(random_state)
    if stratify is not None:
        strat = np.asarray(stratify)
        if strat.shape[0] != m:
            raise ValueError("stratify must match array length")
        test_mask = np.zeros(m, dtype=bool)
        for c in np.unique(strat):
            members = np.flatnonzero(strat == c)
            rng.shuffle(members)
            n_test = max(1, int(round(members.shape[0] * test_size)))
            test_mask[members[:n_test]] = True
        test_idx = np.flatnonzero(test_mask)
        train_idx = np.flatnonzero(~test_mask)
    else:
        order = rng.permutation(m)
        n_test = max(1, int(round(m * test_size)))
        test_idx = order[:n_test]
        train_idx = order[n_test:]
    out = []
    for a in arrays:
        a = np.asarray(a)
        out.append(a[train_idx])
        out.append(a[test_idx])
    return tuple(out)


def cross_validate_classifier(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_splits: int = 5,
    shuffle: bool = True,
    random_state: int | None = None,
    score_fn: Callable[[np.ndarray, np.ndarray], float] = ml_score_classification,
) -> np.ndarray:
    """Stratified K-fold scores of a freshly built classifier per fold."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    splitter = StratifiedKFold(
        n_splits=n_splits, shuffle=shuffle, random_state=random_state
    )
    scores = []
    for train, test in splitter.split(X, y):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(score_fn(y[test], model.predict(X[test])))
    return np.asarray(scores)


def cross_validate_regressor(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_splits: int = 5,
    shuffle: bool = True,
    random_state: int | None = None,
    score_fn: Callable[[np.ndarray, np.ndarray], float] = ml_score_regression,
) -> np.ndarray:
    """Plain K-fold scores of a freshly built regressor per fold."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    splitter = KFold(n_splits=n_splits, shuffle=shuffle, random_state=random_state)
    scores = []
    for train, test in splitter.split(X):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(score_fn(y[test], model.predict(X[test])))
    return np.asarray(scores)

"""Multi-layer perceptrons with the paper's architecture.

Section IV-A: "a multi-layer perceptron (with 2 hidden layers each having
100 neurons and using the rectified linear unit as activation function)".
We implement a minibatch Adam-trained MLP: softmax/cross-entropy for
classification and identity/MSE for regression.  All math is batched
numpy; weights use He initialization appropriate for ReLU.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MLPClassifier", "MLPRegressor"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    np.exp(z, out=z)
    z /= z.sum(axis=1, keepdims=True)
    return z


class _BaseMLP:
    def __init__(
        self,
        hidden_layer_sizes: tuple[int, ...] = (100, 100),
        *,
        learning_rate: float = 1e-3,
        alpha: float = 1e-4,
        batch_size: int | None = None,
        max_iter: int = 200,
        tol: float = 1e-4,
        n_iter_no_change: int = 10,
        shuffle: bool = True,
        random_state: int | None = None,
    ):
        self.hidden_layer_sizes = tuple(int(h) for h in hidden_layer_sizes)
        if any(h < 1 for h in self.hidden_layer_sizes):
            raise ValueError("hidden layer sizes must be >= 1")
        self.learning_rate = float(learning_rate)
        self.alpha = float(alpha)
        self.batch_size = batch_size
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.n_iter_no_change = int(n_iter_no_change)
        self.shuffle = bool(shuffle)
        self.random_state = random_state
        self.loss_curve_: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------
    def _init_params(self, n_in: int, n_out: int, rng: np.random.Generator):
        sizes = (n_in, *self.hidden_layer_sizes, n_out)
        self._W = [
            rng.normal(0.0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self._b = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        # Adam state.
        self._mW = [np.zeros_like(w) for w in self._W]
        self._vW = [np.zeros_like(w) for w in self._W]
        self._mb = [np.zeros_like(b) for b in self._b]
        self._vb = [np.zeros_like(b) for b in self._b]
        self._adam_t = 0

    def _forward(self, X: np.ndarray):
        """Return activations per layer; last entry is pre-output logits."""
        acts = [X]
        h = X
        for i in range(len(self._W) - 1):
            h = _relu(h @ self._W[i] + self._b[i])
            acts.append(h)
        acts.append(h @ self._W[-1] + self._b[-1])
        return acts

    def _adam_step(self, grads_W, grads_b):
        self._adam_t += 1
        b1, b2, eps = 0.9, 0.999, 1e-8
        lr = self.learning_rate * np.sqrt(1 - b2**self._adam_t) / (
            1 - b1**self._adam_t
        )
        for i in range(len(self._W)):
            self._mW[i] = b1 * self._mW[i] + (1 - b1) * grads_W[i]
            self._vW[i] = b2 * self._vW[i] + (1 - b2) * grads_W[i] ** 2
            self._W[i] -= lr * self._mW[i] / (np.sqrt(self._vW[i]) + eps)
            self._mb[i] = b1 * self._mb[i] + (1 - b1) * grads_b[i]
            self._vb[i] = b2 * self._vb[i] + (1 - b2) * grads_b[i] ** 2
            self._b[i] -= lr * self._mb[i] / (np.sqrt(self._vb[i]) + eps)

    def _backward(self, acts, delta_out: np.ndarray, batch: int):
        """Backpropagate ``delta_out`` (dLoss/dlogits) and Adam-update."""
        grads_W = [None] * len(self._W)
        grads_b = [None] * len(self._W)
        delta = delta_out
        for i in range(len(self._W) - 1, -1, -1):
            grads_W[i] = acts[i].T @ delta / batch + self.alpha * self._W[i]
            grads_b[i] = delta.sum(axis=0) / batch
            if i > 0:
                delta = (delta @ self._W[i].T) * (acts[i] > 0)
        self._adam_step(grads_W, grads_b)

    def _fit_loop(self, X: np.ndarray, T: np.ndarray, loss_and_delta):
        rng = np.random.default_rng(self.random_state)
        m = X.shape[0]
        batch = self.batch_size or min(200, m)
        self._init_params(X.shape[1], T.shape[1], rng)
        self.loss_curve_ = []
        best = np.inf
        stall = 0
        for _epoch in range(self.max_iter):
            order = rng.permutation(m) if self.shuffle else np.arange(m)
            epoch_loss = 0.0
            for start in range(0, m, batch):
                sel = order[start : start + batch]
                acts = self._forward(X[sel])
                loss, delta = loss_and_delta(acts[-1], T[sel])
                epoch_loss += loss * sel.shape[0]
                self._backward(acts, delta, sel.shape[0])
            epoch_loss /= m
            self.loss_curve_.append(epoch_loss)
            if epoch_loss < best - self.tol:
                best = epoch_loss
                stall = 0
            else:
                stall += 1
                if stall >= self.n_iter_no_change:
                    break
        self._fitted = True

    def _check_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        return X


class MLPClassifier(_BaseMLP):
    """ReLU MLP classifier (softmax output, cross-entropy loss, Adam)."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X = self._check_X(X)
        y = np.asarray(y)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        T = np.zeros((X.shape[0], self.classes_.shape[0]))
        T[np.arange(X.shape[0]), y_enc] = 1.0

        def loss_and_delta(logits, targets):
            proba = _softmax(logits.copy())
            eps = 1e-12
            loss = -np.mean(
                np.sum(targets * np.log(np.clip(proba, eps, None)), axis=1)
            )
            return float(loss), proba - targets

        self._fit_loop(X, T, loss_and_delta)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("MLP is not fitted")
        logits = self._forward(self._check_X(X))[-1]
        return _softmax(logits)

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class MLPRegressor(_BaseMLP):
    """ReLU MLP regressor (identity output, MSE loss, Adam)."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        X = self._check_X(X)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]

        def loss_and_delta(out, targets):
            err = out - targets
            return float(np.mean(err**2)), 2.0 * err

        self._fit_loop(X, y, loss_and_delta)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("MLP is not fitted")
        out = self._forward(self._check_X(X))[-1]
        return out[:, 0] if out.shape[1] == 1 else out

"""CART decision trees (classification and regression).

Presorted, batched CART: every feature column is argsorted **once per
tree** and the sorted layout is partitioned down the recursion
(sklearn-style), so no node ever re-sorts; feature-subsampled trees
instead sort each node's candidate submatrix in one batched call (tie
order cannot affect the integer prefix counts, so any sort kind yields
the same tree).  At each node the Gini / variance scan runs over *all*
candidate features in one batched prefix-count pass, and the build
itself is an explicit-stack loop that emits the flat node arrays
(feature, threshold, children, values) directly — no Python recursion,
no per-sample loops.

Two split modes:

* ``splitter="exact"`` (default) — evaluates every distinct-value
  boundary, replicating the original recursive one-hot/``cumsum``
  builder (frozen in :mod:`repro.ml._seed_reference`): the same RNG
  consumption order, the same floating-point gain expressions, the same
  first-maximum tie-breaking.  Classification trees (integer class
  counts) and regression trees with exactly-representable target
  statistics are **bit-identical** to the seed; float-target regression
  agrees to within last-ulp rounding (node statistics and, under tied
  feature values, the prefix moments accumulate targets in a different
  sample order than the seed's per-node sort), which can only change a
  split when competing gains sit within the 1e-15 selection epsilon.
* ``splitter="hist"`` — quantile-binned (histogram) splits: each feature
  is bucketed into at most ``max_bins`` quantile bins once per tree and
  candidate thresholds are bin edges.  O(max_bins) candidate positions
  per feature regardless of node size, which wins for large sample
  counts; split placement is approximate, so results can differ from
  exact mode (leaf statistics stay exact).

Prediction is an iterative array walk over the flat node arrays,
suitable for batched inputs.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised implicitly by every fit
    # The raw einsum kernel skips the public wrapper's dispatch/parse
    # overhead, which adds up over thousands of per-node split scans.
    from numpy._core._multiarray_umath import c_einsum as _einsum
except ImportError:  # pragma: no cover
    _einsum = np.einsum

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]

_LEAF = -1

#: Gain must beat the running best by this margin to displace it
#: (matches the seed builder's candidate-feature scan).
_GAIN_EPS = 1e-15


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate a max_features spec into a concrete column count."""
    if max_features is None:
        return n_features
    if isinstance(max_features, str):
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        raise ValueError(f"unknown max_features spec {max_features!r}")
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("float max_features must be in (0, 1]")
        return max(1, int(max_features * n_features))
    mf = int(max_features)
    if mf < 1:
        raise ValueError("max_features must be >= 1")
    return min(mf, n_features)


def _quantile_bin(X: np.ndarray, max_bins: int):
    """Per-feature quantile binning: (codes, edges).

    ``codes[f, i]`` is the bin of sample ``i`` on feature ``f`` and
    ``edges[f]`` the ascending cut points; ``code <= b`` is equivalent to
    ``x <= edges[f][b]``, so a bin split maps onto the ordinary
    ``x <= threshold`` prediction rule.
    """
    m, n = X.shape
    codes = np.zeros((n, m), dtype=np.int16)
    edges: list[np.ndarray] = []
    qs = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    for f in range(n):
        col = X[:, f]
        cuts = np.unique(np.quantile(col, qs))
        # Drop cut points at/above the column max: they cannot separate.
        cuts = cuts[cuts < col.max()] if cuts.size else cuts
        edges.append(cuts)
        if cuts.size:
            codes[f] = np.searchsorted(cuts, col, side="left")
    return codes, edges


class _TreeBuilder:
    """Iterative presorted builder; criterion handled by subclass hooks.

    The sorted layout is one ``(n_features, m)`` matrix ``S`` of sample
    ids — row ``f`` stably sorted by feature ``f`` — partitioned in
    lockstep at every split, so a node is a ``[start, end)`` slice of
    every row and no node ever re-sorts.  Split scans are batched across
    all candidate features of a node and restricted to the first
    ``m_node - 1`` positions (the last position can never split), which
    removes every division-by-zero guard from the seed formulas while
    producing bit-identical gains.
    """

    def __init__(
        self,
        *,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features,
        rng: np.random.Generator,
        splitter: str = "exact",
        max_bins: int = 256,
    ):
        self.max_depth = np.inf if max_depth is None else int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.min_leaf = self.min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        if splitter not in ("exact", "hist"):
            raise ValueError(f"unknown splitter {splitter!r}")
        self.splitter = splitter
        if not 2 <= int(max_bins) <= 2**15:
            raise ValueError("max_bins must be in [2, 32768]")
        self.max_bins = int(max_bins)
        # Flat tree arrays, grown via Python lists during the build.
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.values: list[np.ndarray] = []

    # Subclass hooks ----------------------------------------------------
    def node_value(self, labels: np.ndarray) -> np.ndarray:
        """Leaf payload from the node's targets (any sample order).

        Called exactly once per node, before any impurity query."""
        raise NotImplementedError

    def node_impurity_cached(self, labels: np.ndarray) -> float:
        """Node impurity; may reuse statistics cached by the preceding
        ``node_value`` call and cache parent terms for the split scan."""
        raise NotImplementedError

    def batch_split_gains(self, cols: np.ndarray, labs: np.ndarray):
        """Best split per candidate feature of one node (exact mode).

        ``cols``/``labs`` are ``(k, m)``: each row a feature's sorted
        values and the labels/targets in that order.  Returns
        ``(gains, pos)`` per row, with ``-inf`` gain where no valid
        positive-gain split exists and ``pos`` the left-child size of
        the row's best split.
        """
        raise NotImplementedError

    def begin_tree(self, m: int, n: int) -> None:
        """Per-tree precomputation (size/rank scratch arrays)."""
        self._szl = np.arange(1, m + 1, dtype=np.float64)
        self._szl2 = self._szl**2
        # Row-rank scratch for the per-feature gather: on wide data the
        # candidate count k can exceed the sample count m.
        self._rk = np.arange(max(m, n), dtype=np.intp)
        self._k = _resolve_max_features(self.max_features, n)
        self._all_features = np.arange(n)

    def batch_hist_gains(self, hist: np.ndarray, m: int):
        """Best split per candidate feature from per-bin statistics.

        ``hist`` is ``(k, n_bins, ...)`` per-bin counts/moments; returns
        ``(gains, bins)`` per row with ``-inf`` where no valid split.
        """
        raise NotImplementedError

    def node_histograms(self, codes: np.ndarray, labs: np.ndarray):
        """Per-bin statistics ``(k, n_bins, ...)`` for hist mode."""
        raise NotImplementedError

    # Shared helpers ----------------------------------------------------
    def _pick_feature(self, gains: np.ndarray) -> int:
        """Sequential first-winner scan over candidate gains.

        Bit-for-bit the seed builder's loop: a candidate displaces the
        running best only when its gain exceeds it by ``_GAIN_EPS``.
        Returns the winning row or -1.
        """
        best_gain = 0.0
        best_row = -1
        for j, g in enumerate(gains.tolist()):
            if g > best_gain + _GAIN_EPS:
                best_gain = g
                best_row = j
        return best_row

    def _candidates(self, n_features: int) -> np.ndarray:
        # Sample without replacement; when k == n_features skip the shuffle.
        k = self._k
        if k < n_features:
            return self.rng.choice(n_features, size=k, replace=False)
        return self._all_features

    # Build -------------------------------------------------------------
    def build(self, X: np.ndarray) -> None:
        if self.splitter == "hist":
            self._build_hist(X)
        else:
            self._build_exact(X)

    def _build_exact(self, X: np.ndarray) -> None:
        m, n = X.shape
        self.begin_tree(m, n)
        # Two sorted-layout strategies, both bit-identical to the seed's
        # per-node argsort at every value boundary (tie order inside a
        # run of equal values cannot change any integer prefix count):
        #
        # * when every feature is a candidate at every node (``k == n``)
        #   each column is presorted ONCE and the ``(n, m)`` layout is
        #   partitioned down the recursion sklearn-style — per-node
        #   cost O(n * m_node), no node ever re-sorts;
        # * when features are subsampled (forests), presorting all n
        #   columns buys little (deep nodes would still pay O(m_total)
        #   to extract their slice), so each node argsorts just its
        #   candidate submatrix in ONE batched call — per-node cost
        #   O(k * m_node log m_node), independent of both n and m_total.
        presort = self._k >= n
        # Feature-major copy: every sort, gather and scan below runs
        # along contiguous rows.
        XT = np.ascontiguousarray(X.T)
        if presort:
            S = np.argsort(XT, axis=1)
            in_left = np.zeros(m, dtype=bool)
        else:
            idx = np.arange(m, dtype=np.intp)
        y_flat = self.targets_flat()
        feature, threshold = self.feature, self.threshold
        left, right, values = self.left, self.right, self.values
        max_depth = self.max_depth
        min_split = max(self.min_samples_split, 2 * self.min_samples_leaf)

        # (start, end, depth, parent, is_left); node ids are assigned at
        # pop time, so LIFO order with the right child pushed first
        # reproduces the seed recursion's pre-order numbering exactly.
        stack: list[tuple[int, int, int, int, bool]] = [(0, m, 0, -1, False)]
        while stack:
            start, end, depth, parent, is_left = stack.pop()
            node = len(feature)
            feature.append(_LEAF)
            threshold.append(0.0)
            left.append(_LEAF)
            right.append(_LEAF)
            ids = S[0, start:end] if presort else idx[start:end]
            node_labels = y_flat[ids]
            values.append(self.node_value(node_labels))
            if parent >= 0:
                if is_left:
                    left[parent] = node
                else:
                    right[parent] = node

            m_node = end - start
            if (
                depth >= max_depth
                or m_node < min_split
                or self.node_impurity_cached(node_labels) <= 1e-12
            ):
                continue

            candidates = self._candidates(n)
            k = candidates.shape[0]
            if presort:
                Sc = S[:, start:end]  # (n, m_node) view, rows sorted
                cols = XT[candidates[:, None], Sc]
            else:
                sub = XT[candidates[:, None], ids[None, :]]  # (k, m_node)
                order = np.argsort(sub, axis=1)
                cols = np.take_along_axis(sub, order, axis=1)
                Sc = ids[order]
            # Presorted layout makes the constant-feature check O(1) per
            # candidate: first element vs last element.  Constant rows —
            # common deep in bootstrap trees — are dropped before the
            # scan; their relative order is preserved, so the sequential
            # winner scan matches the seed's skip-and-continue loop.
            moving = cols[:, 0] < cols[:, -1]
            n_moving = int(np.count_nonzero(moving))
            if n_moving == 0:
                continue
            if n_moving < k:
                sel = np.flatnonzero(moving)
                cols = cols[sel]
                Sc = Sc[sel]
            else:
                sel = None
            gains, pos = self.batch_split_gains(cols, y_flat[Sc])
            row = self._pick_feature(gains)
            if row < 0:
                continue

            best_pos = int(pos[row])
            col = cols[row]
            thr = 0.5 * (col[best_pos - 1] + col[best_pos])
            # Guard against degenerate thresholds from float averaging.
            if not col[best_pos - 1] < thr:
                thr = col[best_pos]
            feature[node] = int(candidates[row if sel is None else sel[row]])
            threshold[node] = float(thr)

            mid = start + best_pos
            if presort:
                # Stable partition of the presorted layout: every
                # feature row keeps its own sort order, samples going
                # left slide to the front of the node's slice.
                left_ids = Sc[row, :best_pos].copy()
                in_left[left_ids] = True
                block = S[:, start:end]
                bm = in_left[block]
                lefts = block[bm].reshape(n, best_pos)
                rights = block[~bm].reshape(n, m_node - best_pos)
                S[:, start:mid] = lefts
                S[:, mid:end] = rights
                in_left[left_ids] = False
            else:
                # Child membership is the winning row's sorted ids split
                # at the boundary; segment-internal order is irrelevant.
                idx[start:mid] = Sc[row, :best_pos]
                idx[mid:end] = Sc[row, best_pos:]

            stack.append((mid, end, depth + 1, node, False))
            stack.append((start, mid, depth + 1, node, True))

    def _build_hist(self, X: np.ndarray) -> None:
        # Node emission / stop checks deliberately mirror _build_exact
        # inline rather than through a shared helper: the loops are the
        # dispatch-bound hot path and per-node call overhead is what
        # this engine exists to remove.  Keep the two in sync.
        m, n = X.shape
        self.begin_tree(m, n)
        codes, edges = _quantile_bin(X, self.max_bins)
        y_flat = self.targets_flat()
        idx = np.arange(m, dtype=np.intp)
        min_split = max(self.min_samples_split, 2 * self.min_samples_leaf)

        stack: list[tuple[int, int, int, int, bool]] = [(0, m, 0, -1, False)]
        while stack:
            start, end, depth, parent, is_left = stack.pop()
            node = len(self.feature)
            self.feature.append(_LEAF)
            self.threshold.append(0.0)
            self.left.append(_LEAF)
            self.right.append(_LEAF)
            ids = idx[start:end]
            node_labels = y_flat[ids]
            self.values.append(self.node_value(node_labels))
            if parent >= 0:
                if is_left:
                    self.left[parent] = node
                else:
                    self.right[parent] = node

            m_node = end - start
            if (
                depth >= self.max_depth
                or m_node < min_split
                or self.node_impurity_cached(node_labels) <= 1e-12
            ):
                continue

            candidates = self._candidates(n)
            node_codes = codes[candidates[:, None], ids[None, :]]
            hist = self.node_histograms(node_codes, node_labels)
            gains, bins = self.batch_hist_gains(hist, m_node)
            row = self._pick_feature(gains)
            if row < 0:
                continue

            best_feature = int(candidates[row])
            best_bin = int(bins[row])
            self.feature[node] = best_feature
            self.threshold[node] = float(edges[best_feature][best_bin])

            go_left = node_codes[row] <= best_bin
            best_pos = int(np.count_nonzero(go_left))
            mid = start + best_pos
            # ``ids`` views ``idx``: materialize both halves before
            # writing back into the slice.
            lefts = ids[go_left]
            rights = ids[~go_left]
            idx[start:mid] = lefts
            idx[mid:end] = rights

            stack.append((mid, end, depth + 1, node, False))
            stack.append((start, mid, depth + 1, node, True))

    # Target plumbing (subclass-provided) -------------------------------
    def targets_flat(self) -> np.ndarray:
        raise NotImplementedError

    def finalize(self):
        return (
            np.asarray(self.feature, dtype=np.intp),
            np.asarray(self.threshold, dtype=np.float64),
            np.asarray(self.left, dtype=np.intp),
            np.asarray(self.right, dtype=np.intp),
            np.stack(self.values),
        )


class _ClassificationBuilder(_TreeBuilder):
    def __init__(self, y: np.ndarray, n_classes: int, **kw):
        super().__init__(**kw)
        self.y = y
        self.n_classes = n_classes
        self._crange = np.arange(n_classes)
        self._remap = np.zeros(n_classes, dtype=np.intp)

    def targets_flat(self) -> np.ndarray:
        return self.y

    def node_value(self, labels: np.ndarray) -> np.ndarray:
        # Float class counts are exact integers; cache them for the
        # impurity query and the split scan of the same node.
        m = labels.shape[0]
        cf = np.bincount(labels, minlength=self.n_classes).astype(np.float64)
        self._counts = cf
        self._m_node = m
        value = cf / m
        self._value = value
        return value

    def node_impurity_cached(self, labels: np.ndarray) -> float:
        cf = self._counts
        v = self._value
        # The seed-formula parent impurity and the node-local class set,
        # both reused by batch_split_gains.
        self._parent = 1.0 - (cf @ cf) / self._m_node**2
        present = np.flatnonzero(cf)
        self._present = present
        self._n_present = present.shape[0]
        if self._n_present < cf.shape[0]:
            self._remap[present] = np.arange(self._n_present)
        return float(1.0 - v @ v)

    def batch_split_gains(self, cols, labs):
        k, m = cols.shape
        # Split after position i (left size i+1) is valid where the
        # sorted value changes; position m-1 can never split, so every
        # scan below runs on the first m-1 positions only.
        valid = cols[:, 1:] > cols[:, :-1]
        # Restrict the prefix counts to the classes present in the node
        # (absent classes contribute zero to every squared-count sum) and
        # lay them out class-major so the cumsum runs along contiguous
        # memory.  All counts are exact integers (int32 while the
        # squared-count sums fit), so dividing by the float sizes
        # reproduces the seed's one-hot/cumsum Gini scan bit for bit.
        counts = self._counts
        if self._n_present < counts.shape[0]:
            labs = self._remap[labs]
            counts = counts[self._present]
        nc = counts.shape[0]
        dt = np.int32 if m * m * nc < 2**31 else np.int64
        left = np.cumsum(
            labs[:, None, :-1] == self._crange[:nc, None], axis=2, dtype=dt
        )
        right = counts.astype(dt)[None, :, None] - left
        szl = self._szl[: m - 1]
        szr = m - szl
        gini_left = 1.0 - _einsum("kcm,kcm->km", left, left) / self._szl2[: m - 1]
        gini_right = 1.0 - _einsum("kcm,kcm->km", right, right) / (szr**2)
        weighted = (szl * gini_left + szr * gini_right) / m
        gains = np.where(valid, self._parent - weighted, -np.inf)
        if self.min_leaf > 1:
            lo = self.min_leaf - 1
            hi = m - self.min_leaf
            gains[:, :lo] = -np.inf
            gains[:, hi:] = -np.inf
        best = np.argmax(gains, axis=1)
        gbest = gains[self._rk[:k], best]
        gbest = np.where(gbest > 0.0, gbest, -np.inf)
        return gbest, best + 1

    def node_histograms(self, codes, labels):
        k = codes.shape[0]
        nbins = self.max_bins
        flat = (np.arange(k)[:, None] * nbins + codes) * self.n_classes + labels
        return np.bincount(
            flat.ravel(), minlength=k * nbins * self.n_classes
        ).reshape(k, nbins, self.n_classes)

    def batch_hist_gains(self, hist, m):
        k = hist.shape[0]
        ccum = np.cumsum(hist, axis=1).astype(np.float64)  # (k, B, nc)
        total = ccum[:, -1, :]
        sizes_left = ccum.sum(axis=2)  # (k, B)
        sizes_right = m - sizes_left
        valid = (sizes_left >= self.min_leaf) & (sizes_right >= self.min_leaf)
        safe_left = np.where(sizes_left > 0, sizes_left, 1.0)
        safe_right = np.where(sizes_right > 0, sizes_right, 1.0)
        right = total[:, None, :] - ccum
        gini_left = 1.0 - np.einsum("kbc,kbc->kb", ccum, ccum) / safe_left**2
        gini_right = 1.0 - np.einsum("kbc,kbc->kb", right, right) / safe_right**2
        parent = 1.0 - np.einsum("kc,kc->k", total, total) / m**2
        weighted = (sizes_left * gini_left + sizes_right * gini_right) / m
        gains = np.where(valid, parent[:, None] - weighted, -np.inf)
        best = np.argmax(gains, axis=1)
        gbest = gains[np.arange(k), best]
        gbest = np.where(gbest > 0.0, gbest, -np.inf)
        return gbest, best


class _RegressionBuilder(_TreeBuilder):
    def __init__(self, y: np.ndarray, **kw):
        super().__init__(**kw)
        self.y = y

    def targets_flat(self) -> np.ndarray:
        return self.y

    def node_value(self, labels: np.ndarray) -> np.ndarray:
        # labels.sum()/m uses the same pairwise reduction as
        # labels.mean(), so the stored value is bit-identical to the
        # seed's.
        return np.asarray([labels.sum() / labels.shape[0]])

    def node_impurity_cached(self, labels: np.ndarray) -> float:
        # Two-pass variance like the seed: the one-pass E[x^2]-E[x]^2
        # form cancels catastrophically for offset targets (e.g.
        # y ~ 1e8 + U(0,1) reads as pure) and would collapse the tree.
        return float(labels.var())

    def batch_split_gains(self, cols, labs):
        k, m = cols.shape
        valid = cols[:, 1:] > cols[:, :-1]
        # Prefix moments over the first m-1 positions; the full-column
        # totals extend the same sequential cumsum by one term, keeping
        # every float identical to the seed's full-length scan.
        sq = labs * labs
        csum = np.cumsum(labs[:, :-1], axis=1)
        csum2 = np.cumsum(sq[:, :-1], axis=1)
        total = csum[:, -1] + labs[:, -1]
        total2 = csum2[:, -1] + sq[:, -1]
        szl = self._szl[: m - 1]
        szr = m - szl
        # Variance * size == sum(y^2) - (sum y)^2 / size ; minimize the sum
        # of child SSEs == maximize parent SSE - children SSE.
        sse_left = csum2 - csum**2 / szl
        sse_right = (total2[:, None] - csum2) - (
            total[:, None] - csum
        ) ** 2 / szr
        parent_sse = total2 - total**2 / m
        gains = np.where(
            valid, (parent_sse[:, None] - sse_left - sse_right) / m, -np.inf
        )
        if self.min_leaf > 1:
            gains[:, : self.min_leaf - 1] = -np.inf
            gains[:, m - self.min_leaf :] = -np.inf
        best = np.argmax(gains, axis=1)
        gbest = gains[self._rk[:k], best]
        gbest = np.where(gbest > _GAIN_EPS, gbest, -np.inf)
        return gbest, best + 1

    def node_histograms(self, codes, targets):
        k = codes.shape[0]
        nbins = self.max_bins
        flat = (np.arange(k)[:, None] * nbins + codes).ravel()
        size = k * nbins
        t = np.broadcast_to(targets, codes.shape).ravel()
        cnt = np.bincount(flat, minlength=size).astype(np.float64)
        s1 = np.bincount(flat, weights=t, minlength=size)
        s2 = np.bincount(flat, weights=t * t, minlength=size)
        return np.stack([cnt, s1, s2], axis=-1).reshape(k, nbins, 3)

    def batch_hist_gains(self, hist, m):
        k = hist.shape[0]
        ccum = np.cumsum(hist, axis=1)  # (k, B, 3): count, sum, sum^2
        cnt, csum, csum2 = ccum[..., 0], ccum[..., 1], ccum[..., 2]
        total, total2 = csum[:, -1], csum2[:, -1]
        sizes_right = m - cnt
        valid = (cnt >= self.min_leaf) & (sizes_right >= self.min_leaf)
        safe_left = np.where(cnt > 0, cnt, 1.0)
        safe_right = np.where(sizes_right > 0, sizes_right, 1.0)
        sse_left = csum2 - csum**2 / safe_left
        sse_right = (total2[:, None] - csum2) - (
            total[:, None] - csum
        ) ** 2 / safe_right
        parent_sse = total2 - total**2 / m
        gains = np.where(
            valid, (parent_sse[:, None] - sse_left - sse_right) / m, -np.inf
        )
        best = np.argmax(gains, axis=1)
        gbest = gains[np.arange(k), best]
        gbest = np.where(gbest > _GAIN_EPS, gbest, -np.inf)
        return gbest, best


class _BaseDecisionTree:
    """Shared fit/predict plumbing for the two tree flavours."""

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | np.random.Generator | None = None,
        splitter: str = "exact",
        max_bins: int = 256,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.splitter = splitter
        self.max_bins = max_bins
        self._fitted = False

    def _rng(self) -> np.random.Generator:
        if isinstance(self.random_state, np.random.Generator):
            return self.random_state
        return np.random.default_rng(self.random_state)

    def _builder_kwargs(self) -> dict:
        return dict(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            rng=self._rng(),
            splitter=self.splitter,
            max_bins=self.max_bins,
        )

    def _check_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        return X

    def _apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by every row of ``X``."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        X = self._check_X(X)
        node = np.zeros(X.shape[0], dtype=np.intp)
        active = self._feature[node] != _LEAF
        while active.any():
            cur = node[active]
            f = self._feature[cur]
            thr = self._threshold[cur]
            go_left = X[active, f] <= thr
            nxt = np.where(go_left, self._left[cur], self._right[cur])
            node[active] = nxt
            active = self._feature[node] != _LEAF
        return node

    @property
    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        return int(self._feature.shape[0])

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (root-only tree has depth 0)."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        depths = np.zeros(self.node_count, dtype=np.intp)
        for node in range(self.node_count):
            for child in (self._left[node], self._right[node]):
                if child != _LEAF:
                    depths[child] = depths[node] + 1
        return int(depths.max())


class DecisionTreeClassifier(_BaseDecisionTree):
    """CART classifier with Gini impurity splits."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = self._check_X(X)
        y = np.asarray(y)
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        builder = _ClassificationBuilder(
            y_enc.astype(np.intp),
            n_classes=self.classes_.shape[0],
            **self._builder_kwargs(),
        )
        builder.build(X)
        (
            self._feature,
            self._threshold,
            self._left,
            self._right,
            self._values,
        ) = builder.finalize()
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates (leaf class frequencies)."""
        nodes = self._apply(X)
        return self._values[nodes]

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regressor with variance-reduction (MSE) splits."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = self._check_X(X)
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one target per row of X")
        builder = _RegressionBuilder(y, **self._builder_kwargs())
        builder.build(X)
        (
            self._feature,
            self._threshold,
            self._left,
            self._right,
            self._values,
        ) = builder.finalize()
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        nodes = self._apply(X)
        return self._values[nodes][:, 0]

"""Principal Component Analysis (dimensionality-reduction substrate).

The paper's related-work section discusses PCA-based signature methods
(and the original Lan method used a PCA step for outlier detection); this
module provides a small covariance-eigendecomposition PCA so those
baselines can be reproduced without scikit-learn.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PCA"]


class PCA:
    """Principal component analysis via eigendecomposition.

    Parameters
    ----------
    n_components:
        Number of components to keep; ``None`` keeps
        ``min(n_samples, n_features)``.

    Attributes
    ----------
    components_:
        Array ``(n_components, n_features)``; rows are the principal axes
        sorted by decreasing explained variance.
    explained_variance_:
        Variance captured by each component.
    explained_variance_ratio_:
        Fraction of total variance per component.
    """

    def __init__(self, n_components: int | None = None):
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components

    def fit(self, X: np.ndarray) -> "PCA":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        m, d = X.shape
        if m < 2:
            raise ValueError("need at least two samples")
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        # Eigendecomposition of the covariance; eigh returns ascending
        # eigenvalues, so flip.  Symmetric solver is exact and stable.
        cov = centered.T @ centered / (m - 1)
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.clip(eigvals[order], 0.0, None)
        eigvecs = eigvecs[:, order]
        k = min(m, d) if self.n_components is None else min(self.n_components, d)
        self.components_ = eigvecs[:, :k].T
        self.explained_variance_ = eigvals[:k]
        total = eigvals.sum()
        self.explained_variance_ratio_ = (
            eigvals[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project rows of ``X`` onto the principal axes."""
        if not hasattr(self, "components_"):
            raise RuntimeError("PCA is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Reconstruct from component space (lossy if k < n_features)."""
        if not hasattr(self, "components_"):
            raise RuntimeError("PCA is not fitted")
        return np.asarray(Z, dtype=np.float64) @ self.components_ + self.mean_

"""Feature preprocessing: scalers and label encoding.

Small, dependency-free equivalents of the scikit-learn transformers the
evaluation pipeline needs: standardization for the MLP, min-max scaling
for generic feature conditioning, and integer label encoding.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler", "LabelEncoder"]


class StandardScaler:
    """Zero-mean / unit-variance column scaling."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # Constant columns are mapped to exactly zero rather than NaN.
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("scaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler:
    """Column scaling to a target range (default ``[0, 1]``)."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        lo, hi = feature_range
        if not lo < hi:
            raise ValueError("feature_range must be increasing")
        self.feature_range = (float(lo), float(hi))

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = self.data_max_ - self.data_min_
        self.scale_ = np.where(span > 0, span, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "data_min_"):
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        lo, hi = self.feature_range
        unit = (X - self.data_min_) / self.scale_
        return unit * (hi - lo) + lo

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "data_min_"):
            raise RuntimeError("scaler is not fitted")
        lo, hi = self.feature_range
        unit = (np.asarray(X, dtype=np.float64) - lo) / (hi - lo)
        return unit * self.scale_ + self.data_min_


class LabelEncoder:
    """Map arbitrary labels to contiguous integers ``0..k-1``."""

    def fit(self, y: np.ndarray) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        if not hasattr(self, "classes_"):
            raise RuntimeError("encoder is not fitted")
        y = np.asarray(y)
        idx = np.searchsorted(self.classes_, y)
        k = self.classes_.shape[0]
        bad = (idx >= k) | (self.classes_[np.clip(idx, 0, k - 1)] != y)
        if bad.any():
            raise ValueError(f"unseen labels: {np.unique(y[bad])}")
        return idx

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, idx: np.ndarray) -> np.ndarray:
        if not hasattr(self, "classes_"):
            raise RuntimeError("encoder is not fitted")
        idx = np.asarray(idx, dtype=np.intp)
        if idx.size and (idx.min() < 0 or idx.max() >= self.classes_.shape[0]):
            raise ValueError("encoded labels out of range")
        return self.classes_[idx]

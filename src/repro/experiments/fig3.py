"""Figure 3 reproduction: testing times, signature sizes and ML scores.

For the first four HPC-ODA segments and the eight method configurations
(Tuncer, Bodik, Lan, CS-5/10/20/40/All) this experiment reports:

* **Figure 3a** — dataset-generation time and 5-fold cross-validation
  time per method (the paper's stacked bars);
* **Figure 3b** — the resulting signature sizes (feature-vector lengths);
* **Figure 3c** — the ML scores (macro F1 for Fault/Application,
  ``1 - NRMSE`` for Power/Infrastructure) with a 50-tree random forest.

The expected qualitative outcome, as in the paper: CS matches the
baselines' scores while its signatures are up to ~10x smaller and its
times up to ~10x lower; Fault needs a high block count, Infrastructure is
accurate already at CS-5.

The experiment itself is the registered ``fig3`` scenario spec
(``repro.scenarios.builtin``); this module is a thin compatibility shim:
:func:`run` executes the spec through the generic runner and ``main``
exposes the historical CLI (``python -m repro.experiments.fig3``), which
is equivalent to ``python -m repro run fig3``.
"""

from __future__ import annotations

import argparse

from repro.datasets.recipes import DatasetRecipe
from repro.experiments.harness import DEFAULT_METHODS, ExperimentResult
from repro.scenarios.builtin import PAPER_SEGMENTS
from repro.scenarios.evaluations import GRID_HEADERS
from repro.scenarios.options import (
    add_shared_options,
    options_from_args,
    sinks_from_args,
)
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import execute

__all__ = ["FIG3_SEGMENTS", "HEADERS", "run", "main"]

#: The four segments of Figure 3 (Cross-Architecture is Section IV-F).
FIG3_SEGMENTS: tuple[str, ...] = PAPER_SEGMENTS

HEADERS = GRID_HEADERS


def run(
    *,
    segments: tuple[str, ...] = FIG3_SEGMENTS,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    trees: int = 50,
    repeats: int = 1,
    seed: int = 0,
    scale: float = 1.0,
    segment_kwargs: dict | None = None,
) -> list[ExperimentResult]:
    """Run the full Figure 3 grid; returns one result per cell."""
    spec = get_scenario("fig3").with_datasets(
        DatasetRecipe(
            segment=name,
            seed=seed,
            scale=scale,
            params=dict(segment_kwargs or {}),
        )
        for name in segments
    ).with_methods(methods).with_evaluation(
        trees=trees, repeats=repeats, seed=seed
    )
    return execute(spec).extras["results"]


def main(argv: list[str] | None = None) -> None:
    """CLI entry point for the Figure 3 grid."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_shared_options(
        parser, "--trees", "--repeats", "--seed", "--scale", "--smoke",
        "--cache-dir", "--csv", "--jsonl", "--markdown", "--methods",
        "--segments",
    )
    args = parser.parse_args(argv)
    execute(
        get_scenario("fig3"),
        options=options_from_args(args),
        sinks=sinks_from_args(args),
    )


if __name__ == "__main__":
    main()

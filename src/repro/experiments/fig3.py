"""Figure 3 reproduction: testing times, signature sizes and ML scores.

For the first four HPC-ODA segments and the eight method configurations
(Tuncer, Bodik, Lan, CS-5/10/20/40/All) this experiment reports:

* **Figure 3a** — dataset-generation time and 5-fold cross-validation
  time per method (the paper's stacked bars);
* **Figure 3b** — the resulting signature sizes (feature-vector lengths);
* **Figure 3c** — the ML scores (macro F1 for Fault/Application,
  ``1 - NRMSE`` for Power/Infrastructure) with a 50-tree random forest.

The expected qualitative outcome, as in the paper: CS matches the
baselines' scores while its signatures are up to ~10x smaller and its
times up to ~10x lower; Fault needs a high block count, Infrastructure is
accurate already at CS-5.
"""

from __future__ import annotations

import argparse

from repro.datasets.generators import generate_segment
from repro.experiments.harness import (
    DEFAULT_METHODS,
    ExperimentResult,
    run_method_on_segment,
)
from repro.experiments.reporting import print_table, save_csv

__all__ = ["FIG3_SEGMENTS", "run", "main"]

#: The four segments of Figure 3 (Cross-Architecture is Section IV-F).
FIG3_SEGMENTS: tuple[str, ...] = (
    "fault",
    "application",
    "power",
    "infrastructure",
)

HEADERS = (
    "Segment",
    "Method",
    "Sig. size",
    "Gen time [s]",
    "CV time [s]",
    "ML score",
    "Std",
)


def run(
    *,
    segments: tuple[str, ...] = FIG3_SEGMENTS,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    trees: int = 50,
    repeats: int = 1,
    seed: int = 0,
    scale: float = 1.0,
    segment_kwargs: dict | None = None,
) -> list[ExperimentResult]:
    """Run the full Figure 3 grid; returns one result per cell."""
    results: list[ExperimentResult] = []
    for seg_name in segments:
        kwargs = dict(segment_kwargs or {})
        segment = generate_segment(seg_name, seed=seed, scale=scale, **kwargs)
        for method in methods:
            results.append(
                run_method_on_segment(
                    segment,
                    method,
                    trees=trees,
                    repeats=repeats,
                    seed=seed,
                )
            )
    return results


def main(argv: list[str] | None = None) -> None:
    """CLI entry point for the Figure 3 grid."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trees", type=int, default=50)
    parser.add_argument("--repeats", type=int, default=1,
                        help="cross-validation repetitions (paper: 5)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--segments", nargs="*", default=list(FIG3_SEGMENTS))
    parser.add_argument("--methods", nargs="*", default=list(DEFAULT_METHODS))
    parser.add_argument("--csv", type=str, default=None,
                        help="also write results to this CSV path")
    args = parser.parse_args(argv)
    results = run(
        segments=tuple(args.segments),
        methods=tuple(args.methods),
        trees=args.trees,
        repeats=args.repeats,
        seed=args.seed,
        scale=args.scale,
    )
    rows = [r.row() for r in results]
    print_table(
        HEADERS,
        rows,
        title="Figure 3 — times (a), signature sizes (b) and ML scores (c)",
    )
    if args.csv:
        save_csv(args.csv, HEADERS, rows)


if __name__ == "__main__":
    main()

"""Experiment harness: dataset generation + cross-validation with timing.

Implements the Section IV-A methodology: a signature method turns each
segment into feature sets (timed as "dataset generation"), the feature
sets are shuffled and 5-fold cross-validated with a 50-tree random forest
(stratified folds for classification), and the ML score is the macro
F1-score or ``1 - NRMSE``.  Results are averaged over ``repeats``
independent runs (the paper uses 5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.base import SignatureMethod, get_method
from repro.baselines.cs_adapter import CSSignature
from repro.datasets.generators import SegmentData, WindowedDataset, build_ml_dataset
from repro.engine.fleet import FleetSignatureEngine
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.model_selection import (
    repeated_cross_validate_classifier,
    repeated_cross_validate_regressor,
)

__all__ = [
    "DEFAULT_METHODS",
    "ExperimentResult",
    "FleetRunResult",
    "evaluate_windowed_dataset",
    "make_method_factory",
    "method_display_name",
    "run_fleet_on_segment",
    "run_method_on_segment",
]

#: The eight method configurations of Figure 3.
DEFAULT_METHODS: tuple[str, ...] = (
    "tuncer",
    "bodik",
    "lan",
    "cs-5",
    "cs-10",
    "cs-20",
    "cs-40",
    "cs-all",
)


@dataclass
class ExperimentResult:
    """One (segment, method) cell of Figure 3."""

    segment: str
    method: str
    ml_score: float
    ml_score_std: float
    signature_size: int
    generation_time_s: float
    cv_time_s: float
    n_samples: int

    def row(self) -> tuple:
        """Row for the reporting tables."""
        return (
            self.segment,
            self.method,
            self.signature_size,
            round(self.generation_time_s, 4),
            round(self.cv_time_s, 4),
            round(self.ml_score, 4),
            round(self.ml_score_std, 4),
        )


@dataclass
class FleetRunResult:
    """Outcome of a batched fleet-wide signature computation."""

    signatures: dict[str, np.ndarray]  # component name -> (num, l) complex
    fit_time_s: float
    transform_time_s: float

    @property
    def n_nodes(self) -> int:
        return len(self.signatures)

    @property
    def n_signatures(self) -> int:
        return sum(s.shape[0] for s in self.signatures.values())


def run_fleet_on_segment(
    segment: SegmentData,
    *,
    blocks: int | str = "all",
    wl: int | None = None,
    ws: int | None = None,
    shards: int | None = None,
) -> FleetRunResult:
    """Compute every component's CS signatures in one batched fleet call.

    Treats each component of the segment as one node of a
    :class:`~repro.engine.fleet.FleetSignatureEngine` (matching the
    paper's per-component methodology: a fresh model fitted on each
    component's own data) and transforms the whole fleet at once.  The
    per-node results are bit-identical to looping
    ``CorrelationWiseSmoothing.fit(...).transform_series(...)`` over the
    components, which is what the engine scaling benchmark measures
    against.
    """
    spec = segment.spec
    wl = spec.wl if wl is None else int(wl)
    ws = spec.ws if ws is None else int(ws)
    engine = FleetSignatureEngine(blocks=blocks, wl=wl, ws=ws)
    data = {comp.name: comp.matrix for comp in segment.components}
    start = time.perf_counter()
    for comp in segment.components:
        engine.fit_node(comp.name, comp.matrix, sensor_names=comp.sensor_names)
    fit_time = time.perf_counter() - start
    start = time.perf_counter()
    signatures = engine.transform_fleet(data, shards=shards)
    transform_time = time.perf_counter() - start
    return FleetRunResult(
        signatures=signatures,
        fit_time_s=fit_time,
        transform_time_s=transform_time,
    )


def make_method_factory(
    spec: str | Callable[[], SignatureMethod], *, real_only: bool = False
) -> Callable[[], SignatureMethod]:
    """Normalize a method spec into a zero-arg factory.

    Strings go through the registry (``"tuncer"``, ``"cs-20"``, ...);
    ``real_only`` builds the ``-R`` CS variants of Figure 4.
    """
    if callable(spec):
        return spec
    name = str(spec)
    if real_only:
        if not name.lower().startswith("cs-"):
            raise ValueError("real_only only applies to CS methods")
        token = name[3:]
        blocks: int | str = "all" if token.lower() == "all" else int(token)
        return lambda: CSSignature(blocks=blocks, real_only=True)
    return lambda: get_method(name)


def _cross_validate_repeated(
    dataset: WindowedDataset,
    *,
    trees: int,
    n_splits: int,
    repeats: int,
    seed: int | None,
) -> np.ndarray:
    """(repeats, n_splits) scores; folds/models seeded ``seed + r``.

    The repeated drivers compute the fold grouping once and redraw only
    the per-repeat shuffles, producing the same folds, models and scores
    as building a fresh splitter per repeat.
    """
    if dataset.task == "classification":
        return repeated_cross_validate_classifier(
            lambda s: RandomForestClassifier(trees, random_state=s),
            dataset.X,
            dataset.y,
            n_splits=n_splits,
            repeats=repeats,
            random_state=seed,
        )
    return repeated_cross_validate_regressor(
        lambda s: RandomForestRegressor(trees, random_state=s),
        dataset.X,
        dataset.y,
        n_splits=n_splits,
        repeats=repeats,
        random_state=seed,
    )


def evaluate_windowed_dataset(
    dataset: WindowedDataset,
    *,
    segment_name: str,
    method_name: str,
    trees: int = 50,
    n_splits: int = 5,
    repeats: int = 1,
    seed: int = 0,
) -> ExperimentResult:
    """Cross-validate one prebuilt signature set (the CV half of a cell).

    The scenario runner calls this directly so cached signature sets skip
    dataset generation entirely; :func:`run_method_on_segment` remains
    the build-then-evaluate convenience wrapper.
    """
    start = time.perf_counter()
    fold_scores = _cross_validate_repeated(
        dataset,
        trees=trees,
        n_splits=n_splits,
        repeats=max(repeats, 1),
        seed=seed,
    )
    cv_time = time.perf_counter() - start
    scores_arr = fold_scores.mean(axis=1)
    return ExperimentResult(
        segment=segment_name,
        method=method_name,
        ml_score=float(scores_arr.mean()),
        ml_score_std=float(scores_arr.std()),
        signature_size=dataset.signature_size,
        generation_time_s=dataset.generation_time_s,
        cv_time_s=cv_time / max(repeats, 1),
        n_samples=dataset.n_samples,
    )


def method_display_name(
    method: str | Callable[[], SignatureMethod], *, real_only: bool = False
) -> str:
    """Row label of a method spec (``-R`` suffix for real-only variants)."""
    name = method if isinstance(method, str) else method().name
    name = str(name)
    if real_only and not name.endswith("-R"):
        name = f"{name}-R"
    return name


def run_method_on_segment(
    segment: SegmentData,
    method: str | Callable[[], SignatureMethod],
    *,
    trees: int = 50,
    n_splits: int = 5,
    repeats: int = 1,
    seed: int = 0,
    real_only: bool = False,
) -> ExperimentResult:
    """Evaluate one signature method on one segment.

    Returns the averaged ML score over ``repeats`` cross-validation runs
    plus the dataset-generation and cross-validation wall-clock times
    (the two bar sections of Figure 3a).
    """
    factory = make_method_factory(method, real_only=real_only)
    # The feature matrix is generated once and shared by all repeats;
    # only the CV shuffles differ per repeat.
    dataset = build_ml_dataset(segment, factory)
    name = method if isinstance(method, str) else factory().name
    return evaluate_windowed_dataset(
        dataset,
        segment_name=segment.spec.name,
        method_name=method_display_name(name, real_only=real_only),
        trees=trees,
        n_splits=n_splits,
        repeats=repeats,
        seed=seed,
    )

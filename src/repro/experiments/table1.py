"""Table I reproduction: overview of the dataset-collection segments.

Generates all five synthetic segments and prints, per segment: HPC
system, component count, sensors per component, total data points, series
length, sampling interval, number of feature sets and the ``wl``/``ws``
parameters — the same columns as Table I of the paper (values reflect the
scaled-down synthetic defaults; pass ``--scale`` to enlarge).

The experiment is the registered ``table1`` scenario spec; this module
keeps the historical API (:func:`segment_summary`) and CLI as thin shims
over the generic runner (equivalent to ``python -m repro run table1``).
"""

from __future__ import annotations

import argparse

from repro.datasets.generators import SegmentData
from repro.datasets.recipes import DatasetRecipe
from repro.datasets.schema import SEGMENTS
from repro.datasets.windows import window_starts
from repro.scenarios.options import (
    add_shared_options,
    options_from_args,
    sinks_from_args,
)
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import execute

__all__ = ["segment_summary", "run", "main"]

HEADERS = (
    "Segment",
    "HPC System",
    "Nodes",
    "Sensors",
    "Data Points",
    "Length (samples)",
    "Interval (s)",
    "Feature Sets",
    "wl",
    "ws",
)


def segment_summary(segment: SegmentData) -> tuple:
    """One Table I row for a generated segment."""
    spec = segment.spec
    sensors = (
        "/".join(str(s) for s in spec.sensors)
        if isinstance(spec.sensors, tuple)
        else str(spec.sensors)
    )
    feature_sets = 0
    for comp in segment.components:
        starts = window_starts(comp.t, spec.wl, spec.ws)
        if spec.horizon:
            starts = starts[starts + spec.wl + spec.horizon <= comp.t]
        feature_sets += starts.size
    length = max(c.t for c in segment.components)
    return (
        spec.name,
        spec.system,
        segment.n_components,
        sensors,
        segment.total_data_points,
        length,
        spec.sampling_interval_s,
        feature_sets,
        spec.wl,
        spec.ws,
    )


def run(*, seed: int = 0, scale: float = 1.0) -> list[tuple]:
    """Generate every segment and return its Table I row."""
    spec = get_scenario("table1").with_datasets(
        DatasetRecipe(segment=name, seed=seed, scale=scale)
        for name in SEGMENTS
    )
    return execute(spec).rows


def main(argv: list[str] | None = None) -> None:
    """CLI entry point for the Table I overview."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_shared_options(
        parser, "--seed", "--scale", "--smoke", "--cache-dir", "--csv",
        "--jsonl", "--markdown",
    )
    args = parser.parse_args(argv)
    execute(
        get_scenario("table1"),
        options=options_from_args(args),
        sinks=sinks_from_args(args),
    )


if __name__ == "__main__":
    main()

"""Table I reproduction: overview of the dataset-collection segments.

Generates all five synthetic segments and prints, per segment: HPC
system, component count, sensors per component, total data points, series
length, sampling interval, number of feature sets and the ``wl``/``ws``
parameters — the same columns as Table I of the paper (values reflect the
scaled-down synthetic defaults; pass ``--scale`` to enlarge).
"""

from __future__ import annotations

import argparse

from repro.datasets.generators import SegmentData, generate_segment
from repro.datasets.schema import SEGMENTS
from repro.datasets.windows import window_starts
from repro.experiments.reporting import print_table

__all__ = ["segment_summary", "run", "main"]

HEADERS = (
    "Segment",
    "HPC System",
    "Nodes",
    "Sensors",
    "Data Points",
    "Length (samples)",
    "Interval (s)",
    "Feature Sets",
    "wl",
    "ws",
)


def segment_summary(segment: SegmentData) -> tuple:
    """One Table I row for a generated segment."""
    spec = segment.spec
    sensors = (
        "/".join(str(s) for s in spec.sensors)
        if isinstance(spec.sensors, tuple)
        else str(spec.sensors)
    )
    feature_sets = 0
    for comp in segment.components:
        starts = window_starts(comp.t, spec.wl, spec.ws)
        if spec.horizon:
            starts = starts[starts + spec.wl + spec.horizon <= comp.t]
        feature_sets += starts.size
    length = max(c.t for c in segment.components)
    return (
        spec.name,
        spec.system,
        segment.n_components,
        sensors,
        segment.total_data_points,
        length,
        spec.sampling_interval_s,
        feature_sets,
        spec.wl,
        spec.ws,
    )


def run(*, seed: int = 0, scale: float = 1.0) -> list[tuple]:
    """Generate every segment and return its Table I row."""
    rows = []
    for name in SEGMENTS:
        segment = generate_segment(name, seed=seed, scale=scale)
        rows.append(segment_summary(segment))
    return rows


def main(argv: list[str] | None = None) -> None:
    """CLI entry point for the Table I overview."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply segment lengths (1.0 = quick defaults)")
    args = parser.parse_args(argv)
    rows = run(seed=args.seed, scale=args.scale)
    print_table(HEADERS, rows, title="Table I — HPC-ODA segment overview (synthetic)")


if __name__ == "__main__":
    main()

"""Figure 7 reproduction: one application across three architectures.

Renders the 20-block CS signature heatmaps of LAMMPS runs on the three
Cross-Architecture nodes (Skylake, Knights Landing, AMD Rome).  Each node
has a different sensor count and response scaling, yet — because CS
signatures of a fixed block count are comparable across systems — the
same performance patterns appear in all three heatmaps.

The experiment is the registered ``fig7`` scenario spec; this module
keeps the historical API (:func:`node_heatmap`) and CLI as thin shims
over the generic runner (equivalent to ``python -m repro run fig7``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.visualization import (
    add_boundaries,
    ascii_heatmap,
    signature_heatmaps,
    to_grayscale,
)
from repro.core.pipeline import CorrelationWiseSmoothing
from repro.datasets.generators import ComponentData
from repro.datasets.recipes import recipe
from repro.experiments.fig6 import run_intervals
from repro.scenarios.options import add_shared_options, options_from_args
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import RunOptions, execute

__all__ = ["NodeHeatmap", "node_heatmap", "run", "main"]


@dataclass
class NodeHeatmap:
    """Heatmaps of one application on one architecture."""

    arch: str
    n_sensors: int
    signatures: np.ndarray
    real_image: np.ndarray
    imag_image: np.ndarray


def node_heatmap(
    comp: ComponentData,
    label_id: int,
    wl: int,
    ws: int,
    *,
    blocks: int = 20,
) -> NodeHeatmap | None:
    """Signatures of one application's runs on one node, or None if absent."""
    cs = CorrelationWiseSmoothing(blocks=blocks).fit(comp.matrix)
    all_sigs: list[np.ndarray] = []
    boundaries: list[int] = []
    total = 0
    assert comp.labels is not None
    for start, stop in run_intervals(comp.labels, label_id):
        if stop - start < wl:
            continue
        sigs = cs.transform_series(comp.matrix[:, start:stop], wl, ws)
        if sigs.shape[0] == 0:
            continue
        all_sigs.append(sigs)
        total += sigs.shape[0]
        boundaries.append(total - 1)
    if not all_sigs:
        return None
    signatures = np.concatenate(all_sigs, axis=0)
    real, imag = signature_heatmaps(signatures)
    seps = np.asarray(boundaries[:-1], dtype=np.intp)
    return NodeHeatmap(
        arch=comp.arch,
        n_sensors=comp.n_sensors,
        signatures=signatures,
        real_image=add_boundaries(to_grayscale(real), seps),
        imag_image=add_boundaries(to_grayscale(imag), seps),
    )


def run(
    *,
    app: str = "LAMMPS",
    blocks: int = 20,
    seed: int = 0,
    t: int = 2600,
    out_dir: str | Path | None = None,
) -> list[NodeHeatmap]:
    """Generate the Cross-Architecture segment and compute all heatmaps."""
    spec = get_scenario("fig7").with_datasets(
        (recipe("cross-architecture", seed=seed, t=t),)
    ).with_evaluation(app=app, blocks=blocks)
    result = execute(spec, options=RunOptions(out_dir=out_dir))
    return result.extras["results"]


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: render and save the Figure 7 heatmaps."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_shared_options(parser, "--seed", "--smoke", "--cache-dir", "--out",
                       out="figures")
    parser.add_argument("--app", type=str, default=None,
                        help="application to render (default LAMMPS)")
    parser.add_argument("--blocks", type=int, default=None,
                        help="CS block count (default 20, paper's Figure 7)")
    parser.add_argument("--t", type=int, default=None,
                        help="samples per architecture (default 2600)")
    args = parser.parse_args(argv)
    overrides = {}
    if args.app is not None:
        overrides["app"] = args.app
    if args.blocks is not None:
        overrides["blocks"] = args.blocks
    datasets = None
    if args.t is not None:
        datasets = (recipe("cross-architecture", t=args.t),)
    result = execute(
        get_scenario("fig7"),
        options=options_from_args(
            args, evaluation=overrides or None, datasets=datasets
        ),
    )
    app = result.spec.evaluation_dict()["app"]
    for res in result.extras["results"]:
        print(f"\n=== {app} on {res.arch} ({res.n_sensors} sensors) — real ===")
        print(ascii_heatmap(255 - res.real_image.astype(np.float64)))
        print(f"--- {app} on {res.arch} — imaginary ---")
        print(ascii_heatmap(255 - res.imag_image.astype(np.float64)))
    print(f"\nPGM images written to {args.out}/")


if __name__ == "__main__":
    main()

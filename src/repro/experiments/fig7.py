"""Figure 7 reproduction: one application across three architectures.

Renders the 20-block CS signature heatmaps of LAMMPS runs on the three
Cross-Architecture nodes (Skylake, Knights Landing, AMD Rome).  Each node
has a different sensor count and response scaling, yet — because CS
signatures of a fixed block count are comparable across systems — the
same performance patterns appear in all three heatmaps.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.visualization import (
    add_boundaries,
    ascii_heatmap,
    save_pgm,
    signature_heatmaps,
    to_grayscale,
)
from repro.core.pipeline import CorrelationWiseSmoothing
from repro.datasets.generators import ComponentData, generate_cross_architecture
from repro.experiments.fig6 import run_intervals

__all__ = ["NodeHeatmap", "node_heatmap", "run", "main"]


@dataclass
class NodeHeatmap:
    """Heatmaps of one application on one architecture."""

    arch: str
    n_sensors: int
    signatures: np.ndarray
    real_image: np.ndarray
    imag_image: np.ndarray


def node_heatmap(
    comp: ComponentData,
    label_id: int,
    wl: int,
    ws: int,
    *,
    blocks: int = 20,
) -> NodeHeatmap | None:
    """Signatures of one application's runs on one node, or None if absent."""
    cs = CorrelationWiseSmoothing(blocks=blocks).fit(comp.matrix)
    all_sigs: list[np.ndarray] = []
    boundaries: list[int] = []
    total = 0
    assert comp.labels is not None
    for start, stop in run_intervals(comp.labels, label_id):
        if stop - start < wl:
            continue
        sigs = cs.transform_series(comp.matrix[:, start:stop], wl, ws)
        if sigs.shape[0] == 0:
            continue
        all_sigs.append(sigs)
        total += sigs.shape[0]
        boundaries.append(total - 1)
    if not all_sigs:
        return None
    signatures = np.concatenate(all_sigs, axis=0)
    real, imag = signature_heatmaps(signatures)
    seps = np.asarray(boundaries[:-1], dtype=np.intp)
    return NodeHeatmap(
        arch=comp.arch,
        n_sensors=comp.n_sensors,
        signatures=signatures,
        real_image=add_boundaries(to_grayscale(real), seps),
        imag_image=add_boundaries(to_grayscale(imag), seps),
    )


def run(
    *,
    app: str = "LAMMPS",
    blocks: int = 20,
    seed: int = 0,
    t: int = 2600,
    out_dir: str | Path | None = None,
) -> list[NodeHeatmap]:
    """Generate the Cross-Architecture segment and compute all heatmaps."""
    segment = generate_cross_architecture(seed=seed, t=t)
    try:
        label_id = segment.label_names.index(app)
    except ValueError:
        raise KeyError(
            f"unknown application {app!r}; known: {segment.label_names}"
        ) from None
    results = []
    for comp in segment.components:
        res = node_heatmap(
            comp, label_id, segment.spec.wl, segment.spec.ws, blocks=blocks
        )
        if res is None:
            continue
        results.append(res)
        if out_dir is not None:
            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            save_pgm(out / f"fig7_{res.arch}_real.pgm", res.real_image)
            save_pgm(out / f"fig7_{res.arch}_imag.pgm", res.imag_image)
    return results


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: render and save the Figure 7 heatmaps."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", type=str, default="LAMMPS")
    parser.add_argument("--blocks", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--t", type=int, default=2600)
    parser.add_argument("--out", type=str, default="figures")
    args = parser.parse_args(argv)
    results = run(
        app=args.app,
        blocks=args.blocks,
        seed=args.seed,
        t=args.t,
        out_dir=args.out,
    )
    for res in results:
        print(f"\n=== {args.app} on {res.arch} ({res.n_sensors} sensors) — real ===")
        print(ascii_heatmap(255 - res.real_image.astype(np.float64)))
        print(f"--- {args.app} on {res.arch} — imaginary ---")
        print(ascii_heatmap(255 - res.imag_image.astype(np.float64)))
    print(f"\nPGM images written to {args.out}/")


if __name__ == "__main__":
    main()

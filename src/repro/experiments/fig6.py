"""Figure 6 (and Figure 2) reproduction: application signature heatmaps.

Computes CS signatures with 160 blocks over the full 16-node sensor stack
(~832 dimensions) of the Application segment, separately for each run of
a chosen set of applications, and renders the real and imaginary
components as heatmaps — each column one signature, solid vertical lines
separating runs.  Images are written as binary PGM files and echoed as
ASCII art.

The paper's interpretation hooks are reproduced by the workload models:
Kripke shows clear iterations in both components, Linpack constant load
with a pronounced initialization phase, Quicksilver light load with a
periodic frequency pattern, and AMG (Figure 2) a memory-usage gradient.

The experiment is the registered ``fig6`` scenario spec; this module
keeps the historical API (:func:`application_heatmaps`,
:func:`run_intervals`) and CLI as thin shims over the generic runner
(equivalent to ``python -m repro run fig6 --out figures``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.visualization import (
    add_boundaries,
    ascii_heatmap,
    signature_heatmaps,
    to_grayscale,
)
from repro.core.pipeline import CorrelationWiseSmoothing
from repro.datasets.generators import SegmentData
from repro.datasets.recipes import recipe
from repro.scenarios.builtin import FIG6_APPS
from repro.scenarios.options import add_shared_options, options_from_args
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import RunOptions, execute

__all__ = ["FIG6_APPS", "HeatmapResult", "run_intervals", "application_heatmaps", "run", "main"]


@dataclass
class HeatmapResult:
    """Signature heatmaps of one application."""

    app: str
    signatures: np.ndarray        # (num_windows, l) complex
    boundaries: np.ndarray        # column indices of run ends
    real_image: np.ndarray        # uint8
    imag_image: np.ndarray        # uint8


def run_intervals(labels: np.ndarray, label_id: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` intervals where ``labels == label_id``."""
    labels = np.asarray(labels)
    mask = labels == label_id
    if not mask.any():
        return []
    edges = np.flatnonzero(np.diff(mask.astype(np.int8)))
    starts = list(edges[~mask[edges]] + 1)
    stops = list(edges[mask[edges]] + 1)
    if mask[0]:
        starts.insert(0, 0)
    if mask[-1]:
        stops.append(labels.shape[0])
    return list(zip(starts, stops))


def application_heatmaps(
    segment: SegmentData,
    app: str,
    *,
    blocks: int = 160,
    wl: int | None = None,
    ws: int | None = None,
) -> HeatmapResult:
    """Compute the Figure 6 heatmaps for one application.

    The CS model is trained on the full stacked matrix (all nodes, all
    applications — the historical data), then signatures are computed for
    the windows inside each of the application's runs.
    """
    spec = segment.spec
    wl = spec.wl if wl is None else wl
    ws = spec.ws if ws is None else ws
    stacked = segment.stacked_matrix()
    labels = segment.components[0].labels
    if labels is None:
        raise ValueError("segment lacks labels")
    try:
        label_id = segment.label_names.index(app)
    except ValueError:
        raise KeyError(
            f"unknown application {app!r}; known: {segment.label_names}"
        ) from None
    cs = CorrelationWiseSmoothing(blocks=blocks).fit(stacked)
    all_sigs: list[np.ndarray] = []
    boundaries: list[int] = []
    total = 0
    for start, stop in run_intervals(labels, label_id):
        if stop - start < wl:
            continue
        sigs = cs.transform_series(stacked[:, start:stop], wl, ws)
        if sigs.shape[0] == 0:
            continue
        all_sigs.append(sigs)
        total += sigs.shape[0]
        boundaries.append(total - 1)
    if not all_sigs:
        raise ValueError(f"no runs of {app!r} long enough for wl={wl}")
    signatures = np.concatenate(all_sigs, axis=0)
    real, imag = signature_heatmaps(signatures)
    # Run-end separators are drawn on all but the final column.
    seps = np.asarray(boundaries[:-1], dtype=np.intp)
    real_img = add_boundaries(to_grayscale(real), seps)
    imag_img = add_boundaries(to_grayscale(imag), seps)
    return HeatmapResult(
        app=app,
        signatures=signatures,
        boundaries=np.asarray(boundaries, dtype=np.intp),
        real_image=real_img,
        imag_image=imag_img,
    )


def run(
    *,
    apps: tuple[str, ...] = FIG6_APPS,
    blocks: int = 160,
    seed: int = 0,
    t: int = 2400,
    nodes: int = 16,
    out_dir: str | Path | None = None,
) -> list[HeatmapResult]:
    """Generate the Application segment and compute all heatmaps."""
    spec = get_scenario("fig6").with_datasets(
        (recipe("application", seed=seed, t=t, nodes=nodes),)
    ).with_evaluation(apps=tuple(apps), blocks=blocks)
    result = execute(spec, options=RunOptions(out_dir=out_dir))
    return result.extras["results"]


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: render and save the Figure 6 heatmaps."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_shared_options(parser, "--seed", "--smoke", "--cache-dir", "--out",
                       out="figures")
    parser.add_argument("--apps", nargs="*", default=None,
                        help="applications to render (e.g. AMG for Figure 2; "
                        "default: Kripke Linpack Quicksilver)")
    parser.add_argument("--blocks", type=int, default=None,
                        help="CS block count (default 160, paper's Figure 6)")
    parser.add_argument("--t", type=int, default=None,
                        help="samples of Application-segment data to generate "
                        "(default 2400)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="nodes in the generated segment (default 16)")
    args = parser.parse_args(argv)
    overrides = {}
    if args.apps is not None:
        overrides["apps"] = tuple(args.apps)
    if args.blocks is not None:
        overrides["blocks"] = args.blocks
    datasets = None
    if args.t is not None or args.nodes is not None:
        datasets = (recipe(
            "application",
            t=args.t if args.t is not None else 2400,
            nodes=args.nodes if args.nodes is not None else 16,
        ),)
    result = execute(
        get_scenario("fig6"),
        options=options_from_args(
            args, evaluation=overrides or None, datasets=datasets
        ),
    )
    for res in result.extras["results"]:
        print(f"\n=== {res.app}: real components "
              f"({res.signatures.shape[0]} signatures x {res.signatures.shape[1]} blocks) ===")
        print(ascii_heatmap(255 - res.real_image.astype(np.float64)))
        print(f"--- {res.app}: imaginary components ---")
        print(ascii_heatmap(255 - res.imag_image.astype(np.float64)))
    print(f"\nPGM images written to {args.out}/")


if __name__ == "__main__":
    main()

"""Plain-text table formatting for experiment output.

The benchmarks print the same rows/series the paper's figures plot; this
module renders them as aligned fixed-width tables (and optionally CSV) so
results are directly comparable with EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

__all__ = ["format_table", "print_table", "save_csv", "format_value"]


def format_value(value) -> str:
    """Human-friendly cell rendering (floats get 4 significant digits)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None
) -> str:
    """Render rows as an aligned fixed-width text table."""
    str_rows = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None
) -> None:
    """Print :func:`format_table` output."""
    print(format_table(headers, rows, title=title))


def save_csv(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence]
) -> Path:
    """Write rows as a simple comma-separated file."""
    path = Path(path)
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(format_value(c) for c in row))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path

"""Pluggable result sinks for experiment output.

The experiment runner produces the same rows/series the paper's figures
plot; this module renders them through interchangeable *sinks* — aligned
fixed-width text tables, CSV, JSON lines and markdown summaries — so any
scenario can emit any combination of formats (results are directly
comparable with EXPERIMENTS.md).

The functional API (:func:`format_table`, :func:`save_csv`, ...) is the
stable low-level layer; the :class:`Sink` classes adapt it to the
scenario runner (``repro.scenarios.runner``), which hands each sink a
result object exposing ``headers``, ``rows``, ``title`` and ``notes``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

__all__ = [
    "format_table",
    "print_table",
    "save_csv",
    "save_jsonl",
    "save_markdown",
    "format_value",
    "Sink",
    "TableSink",
    "CSVSink",
    "JSONLSink",
    "MarkdownSink",
    "SINK_TYPES",
    "make_sink",
]


def format_value(value) -> str:
    """Human-friendly cell rendering (floats get 4 significant digits)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None
) -> str:
    """Render rows as an aligned fixed-width text table."""
    str_rows = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None
) -> None:
    """Print :func:`format_table` output."""
    print(format_table(headers, rows, title=title))


def _csv_cell(text: str) -> str:
    """RFC-4180 quoting: only cells containing specials get wrapped."""
    if any(ch in text for ch in ',"\n\r'):
        return '"' + text.replace('"', '""') + '"'
    return text


def save_csv(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence]
) -> Path:
    """Write rows as a comma-separated file (parent dirs created).

    Cells containing commas, quotes or newlines are RFC-4180 quoted;
    plain cells are written verbatim, so files without special characters
    are byte-identical to the historical simple-join format.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [",".join(_csv_cell(str(h)) for h in headers)]
    for row in rows:
        lines.append(",".join(_csv_cell(format_value(c)) for c in row))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def save_jsonl(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence]
) -> Path:
    """Write rows as JSON lines: one ``{header: value}`` object per row.

    Values are emitted as native JSON types where possible (no display
    rounding), so JSONL output is the machine-consumption format.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(dict(zip(headers, row)), default=str) + "\n")
    return path


def _md_cell(text: str) -> str:
    return text.replace("|", "\\|")


def save_markdown(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
    notes: Sequence[str] = (),
) -> Path:
    """Write a GitHub-flavored markdown summary table."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    if title:
        lines += [f"## {title}", ""]
    lines.append("| " + " | ".join(_md_cell(str(h)) for h in headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(_md_cell(format_value(c)) for c in row) + " |"
        )
    for note in notes:
        text = note.strip()
        if text:
            lines += ["", text]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Sinks: the pluggable output layer of the scenario runner
# ----------------------------------------------------------------------
class Sink:
    """Consumes one scenario result (duck-typed: ``headers``/``rows``/
    ``title``/``notes`` attributes)."""

    def emit(self, result) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class TableSink(Sink):
    """Print the aligned text table (plus free-form notes) to stdout."""

    def emit(self, result) -> None:
        print_table(result.headers, result.rows, title=result.title)
        for note in result.notes:
            print(note)


class CSVSink(Sink):
    def __init__(self, path: str | Path):
        self.path = Path(path)

    def emit(self, result) -> None:
        save_csv(self.path, result.headers, result.rows)


class JSONLSink(Sink):
    def __init__(self, path: str | Path):
        self.path = Path(path)

    def emit(self, result) -> None:
        save_jsonl(self.path, result.headers, result.rows)


class MarkdownSink(Sink):
    def __init__(self, path: str | Path):
        self.path = Path(path)

    def emit(self, result) -> None:
        save_markdown(
            self.path,
            result.headers,
            result.rows,
            title=result.title,
            notes=result.notes,
        )


SINK_TYPES: dict[str, type[Sink]] = {
    "table": TableSink,
    "csv": CSVSink,
    "jsonl": JSONLSink,
    "markdown": MarkdownSink,
}


def make_sink(kind: str, *args) -> Sink:
    """Instantiate a sink by registry name (``table``/``csv``/...)."""
    try:
        cls = SINK_TYPES[kind]
    except KeyError:
        raise KeyError(
            f"unknown sink {kind!r}; known: {sorted(SINK_TYPES)}"
        ) from None
    return cls(*args)

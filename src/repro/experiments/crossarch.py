"""Section IV-F reproduction: portability across architectures.

Follows the paper's three-step protocol exactly:

1. apply the CS method to each of the three nodes *independently*,
   generating 20-block signatures (so all feature vectors have the same
   length despite 52/46/39 sensors per node);
2. merge the three per-node datasets into one;
3. run 5-fold stratified cross-validation classifying the running
   application with no knowledge of the architecture.

The paper reports F1 = 0.995 with a random forest and 0.992 with a
multi-layer perceptron; our synthetic segment should land similarly high,
and — crucially — the experiment is *impossible* with the baselines,
whose signature lengths differ per node (we verify that too).

The experiment is the registered ``crossarch`` scenario spec; this module
keeps the historical API (:class:`CrossArchResult`,
:func:`baseline_signature_lengths`) and CLI as thin shims over the
generic runner (equivalent to ``python -m repro run crossarch``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.baselines.base import get_method
from repro.datasets.generators import generate_cross_architecture
from repro.datasets.recipes import recipe
from repro.scenarios.options import (
    add_shared_options,
    options_from_args,
    sinks_from_args,
)
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import execute

__all__ = ["CrossArchResult", "run", "baseline_signature_lengths", "main"]


@dataclass
class CrossArchResult:
    """Outcome of the merged cross-architecture classification."""

    rf_f1: float
    mlp_f1: float
    n_samples: int
    signature_size: int
    per_arch_counts: dict[str, int]


def baseline_signature_lengths(segment=None, *, seed: int = 0, t: int = 900) -> dict:
    """Per-node Tuncer signature lengths — demonstrably incompatible.

    Returns a mapping ``arch -> feature length``; the values differ, which
    is why "this experiment cannot be reproduced at all using the baseline
    methods".
    """
    if segment is None:
        segment = generate_cross_architecture(seed=seed, t=t)
    method = get_method("tuncer")
    return {
        comp.arch: method.feature_length(comp.n_sensors, segment.spec.wl)
        for comp in segment.components
    }


def run(
    *,
    blocks: int = 20,
    trees: int = 50,
    seed: int = 0,
    t: int = 1600,
    mlp_max_iter: int = 150,
) -> CrossArchResult:
    """Run the merged-dataset classification with RF and MLP models."""
    spec = get_scenario("crossarch").with_datasets(
        (recipe("cross-architecture", seed=seed, t=t),)
    ).with_evaluation(
        blocks=blocks, trees=trees, seed=seed, mlp_max_iter=mlp_max_iter
    )
    return execute(spec).extras["result"]


def main(argv: list[str] | None = None) -> None:
    """CLI entry point for the Section IV-F experiment."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_shared_options(
        parser, "--trees", "--seed", "--smoke", "--cache-dir", "--csv",
        "--jsonl", "--markdown",
    )
    parser.add_argument("--blocks", type=int, default=None,
                        help="CS block count (default 20, Section IV-F)")
    parser.add_argument("--t", type=int, default=None,
                        help="samples per architecture (default 1600)")
    args = parser.parse_args(argv)
    overrides = {"blocks": args.blocks} if args.blocks is not None else None
    datasets = None
    if args.t is not None:
        datasets = (recipe("cross-architecture", t=args.t),)
    execute(
        get_scenario("crossarch"),
        options=options_from_args(
            args, evaluation=overrides, datasets=datasets
        ),
        sinks=sinks_from_args(args),
    )


if __name__ == "__main__":
    main()

"""Section IV-F reproduction: portability across architectures.

Follows the paper's three-step protocol exactly:

1. apply the CS method to each of the three nodes *independently*,
   generating 20-block signatures (so all feature vectors have the same
   length despite 52/46/39 sensors per node);
2. merge the three per-node datasets into one;
3. run 5-fold stratified cross-validation classifying the running
   application with no knowledge of the architecture.

The paper reports F1 = 0.995 with a random forest and 0.992 with a
multi-layer perceptron; our synthetic segment should land similarly high,
and — crucially — the experiment is *impossible* with the baselines,
whose signature lengths differ per node (we verify that too).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.baselines.base import get_method
from repro.datasets.generators import build_ml_dataset, generate_cross_architecture
from repro.experiments.reporting import print_table
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import f1_score
from repro.ml.mlp import MLPClassifier
from repro.ml.model_selection import StratifiedKFold
from repro.ml.preprocessing import StandardScaler

__all__ = ["CrossArchResult", "run", "baseline_signature_lengths", "main"]


@dataclass
class CrossArchResult:
    """Outcome of the merged cross-architecture classification."""

    rf_f1: float
    mlp_f1: float
    n_samples: int
    signature_size: int
    per_arch_counts: dict[str, int]


def baseline_signature_lengths(segment=None, *, seed: int = 0, t: int = 900) -> dict:
    """Per-node Tuncer signature lengths — demonstrably incompatible.

    Returns a mapping ``arch -> feature length``; the values differ, which
    is why "this experiment cannot be reproduced at all using the baseline
    methods".
    """
    if segment is None:
        segment = generate_cross_architecture(seed=seed, t=t)
    method = get_method("tuncer")
    return {
        comp.arch: method.feature_length(comp.n_sensors, segment.spec.wl)
        for comp in segment.components
    }


def run(
    *,
    blocks: int = 20,
    trees: int = 50,
    seed: int = 0,
    t: int = 1600,
    mlp_max_iter: int = 150,
) -> CrossArchResult:
    """Run the merged-dataset classification with RF and MLP models."""
    segment = generate_cross_architecture(seed=seed, t=t)
    dataset = build_ml_dataset(segment, lambda: get_method(f"cs-{blocks}"))
    X, y = dataset.X, dataset.y.astype(np.intp)
    per_arch = {
        comp.arch: int((dataset.groups == i).sum())
        for i, comp in enumerate(segment.components)
    }

    rf_scores = []
    mlp_scores = []
    splitter = StratifiedKFold(n_splits=5, shuffle=True, random_state=seed)
    for train, test in splitter.split(X, y):
        rf = RandomForestClassifier(trees, random_state=seed).fit(X[train], y[train])
        rf_scores.append(f1_score(y[test], rf.predict(X[test])))
        scaler = StandardScaler().fit(X[train])
        mlp = MLPClassifier(max_iter=mlp_max_iter, random_state=seed)
        mlp.fit(scaler.transform(X[train]), y[train])
        mlp_scores.append(f1_score(y[test], mlp.predict(scaler.transform(X[test]))))
    return CrossArchResult(
        rf_f1=float(np.mean(rf_scores)),
        mlp_f1=float(np.mean(mlp_scores)),
        n_samples=dataset.n_samples,
        signature_size=dataset.signature_size,
        per_arch_counts=per_arch,
    )


def main(argv: list[str] | None = None) -> None:
    """CLI entry point for the Section IV-F experiment."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=20)
    parser.add_argument("--trees", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--t", type=int, default=1600)
    args = parser.parse_args(argv)
    result = run(blocks=args.blocks, trees=args.trees, seed=args.seed, t=args.t)
    print_table(
        ("Model", "F1 (merged 3-arch dataset)", "Paper"),
        [
            ("Random forest", round(result.rf_f1, 4), 0.995),
            ("MLP", round(result.mlp_f1, 4), 0.992),
        ],
        title="Section IV-F — cross-architecture application classification",
    )
    print(f"\nSamples: {result.n_samples}  per arch: {result.per_arch_counts}")
    print(f"CS signature size (uniform across architectures): "
          f"{result.signature_size}")
    lengths = baseline_signature_lengths(seed=args.seed)
    print(f"Tuncer signature sizes per architecture (incompatible): {lengths}")


if __name__ == "__main__":
    main()

"""Figure 5 reproduction: signature-computation scalability.

Measures the time to compute a single signature from random ``Sw``
matrices, (a) as a function of the aggregation window ``wl`` with the
dimension count fixed at ``n = 100``, and (b) as a function of ``n`` with
``wl = 100`` — repeating each measurement and taking the median, exactly
as Section IV-D describes.  The CS training stage is excluded: models are
fitted once per matrix size before the clock starts.

Expected shapes: every method is linear in ``n``; Tuncer and Bodik are
slightly super-linear in ``wl`` (their percentiles cost
``O(wl log wl)``); CS is linear in both and roughly an order of magnitude
faster than Tuncer/Bodik at the high end, with the block count having
only a minor effect.

The experiment is the registered ``fig5`` scenario spec; this module
keeps the historical API and CLI as thin shims over the generic runner
(equivalent to ``python -m repro run fig5``).
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

import numpy as np

from repro.experiments.harness import DEFAULT_METHODS, make_method_factory
from repro.scenarios.builtin import FIG5_N_GRID, FIG5_WL_GRID
from repro.scenarios.evaluations import TIMING_HEADERS
from repro.scenarios.options import (
    add_shared_options,
    options_from_args,
    sinks_from_args,
)
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import execute

__all__ = [
    "DEFAULT_WL_GRID",
    "DEFAULT_N_GRID",
    "TimingPoint",
    "time_single_signature",
    "run",
    "main",
]

#: Scaled-down versions of the paper's 10..10k sweeps; override via CLI.
DEFAULT_WL_GRID: tuple[int, ...] = FIG5_WL_GRID
DEFAULT_N_GRID: tuple[int, ...] = FIG5_N_GRID

HEADERS = TIMING_HEADERS


@dataclass
class TimingPoint:
    """One point of the Figure 5 timing curves."""

    axis: str       # "wl" or "n"
    method: str
    wl: int
    n: int
    median_time_s: float

    def row(self) -> tuple:
        return (self.axis, self.method, self.wl, self.n, self.median_time_s)


def time_single_signature(
    method_name: str,
    n: int,
    wl: int,
    *,
    repeats: int = 20,
    seed: int = 0,
) -> float:
    """Median wall-clock seconds to compute one signature.

    The method is fitted on the random matrix beforehand (CS training is
    excluded from the measurement, matching the paper's methodology).
    """
    rng = np.random.default_rng(seed)
    Sw = rng.random((n, wl))
    method = make_method_factory(method_name)()
    method.fit(Sw)
    # Warm-up pass so allocation effects don't land in the first sample.
    method.transform(Sw)
    times = np.empty(max(repeats, 1))
    for i in range(times.shape[0]):
        start = time.perf_counter()
        method.transform(Sw)
        times[i] = time.perf_counter() - start
    return float(np.median(times))


def run(
    *,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    wl_grid: tuple[int, ...] = DEFAULT_WL_GRID,
    n_grid: tuple[int, ...] = DEFAULT_N_GRID,
    fixed_n: int = 100,
    fixed_wl: int = 100,
    repeats: int = 20,
    seed: int = 0,
) -> list[TimingPoint]:
    """Run both Figure 5 sweeps; returns one timing point per cell.

    Methods with a fixed block count are skipped for matrix sizes where
    ``l > n`` (e.g. CS-40 needs at least 40 dimensions).
    """
    spec = get_scenario("fig5").with_methods(methods).with_evaluation(
        wl_grid=tuple(wl_grid),
        n_grid=tuple(n_grid),
        fixed_n=fixed_n,
        fixed_wl=fixed_wl,
        repeats=repeats,
        seed=seed,
    )
    return execute(spec).extras["points"]


def main(argv: list[str] | None = None) -> None:
    """CLI entry point for the Figure 5 timing sweeps."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_shared_options(
        parser, "--repeats", "--seed", "--smoke", "--csv", "--jsonl",
        "--markdown", "--methods",
    )
    parser.add_argument("--wl-grid", nargs="*", type=int, default=None,
                        help="window lengths for the wl sweep")
    parser.add_argument("--n-grid", nargs="*", type=int, default=None,
                        help="dimension counts for the n sweep")
    args = parser.parse_args(argv)
    overrides = {}
    if args.wl_grid is not None:
        overrides["wl_grid"] = tuple(args.wl_grid)
    if args.n_grid is not None:
        overrides["n_grid"] = tuple(args.n_grid)
    execute(
        get_scenario("fig5"),
        options=options_from_args(args, evaluation=overrides or None),
        sinks=sinks_from_args(args),
    )


if __name__ == "__main__":
    main()

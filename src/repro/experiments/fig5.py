"""Figure 5 reproduction: signature-computation scalability.

Measures the time to compute a single signature from random ``Sw``
matrices, (a) as a function of the aggregation window ``wl`` with the
dimension count fixed at ``n = 100``, and (b) as a function of ``n`` with
``wl = 100`` — repeating each measurement and taking the median, exactly
as Section IV-D describes.  The CS training stage is excluded: models are
fitted once per matrix size before the clock starts.

Expected shapes: every method is linear in ``n``; Tuncer and Bodik are
slightly super-linear in ``wl`` (their percentiles cost
``O(wl log wl)``); CS is linear in both and roughly an order of magnitude
faster than Tuncer/Bodik at the high end, with the block count having
only a minor effect.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

import numpy as np

from repro.experiments.harness import DEFAULT_METHODS, make_method_factory
from repro.experiments.reporting import print_table, save_csv

__all__ = [
    "DEFAULT_WL_GRID",
    "DEFAULT_N_GRID",
    "TimingPoint",
    "time_single_signature",
    "run",
    "main",
]

#: Scaled-down versions of the paper's 10..10k sweeps; override via CLI.
DEFAULT_WL_GRID: tuple[int, ...] = (10, 250, 500, 1000, 2000, 4000)
DEFAULT_N_GRID: tuple[int, ...] = (10, 250, 500, 1000, 2000, 4000)

HEADERS = ("Axis", "Method", "wl", "n", "Median time [s]")


@dataclass
class TimingPoint:
    """One point of the Figure 5 timing curves."""

    axis: str       # "wl" or "n"
    method: str
    wl: int
    n: int
    median_time_s: float

    def row(self) -> tuple:
        return (self.axis, self.method, self.wl, self.n, self.median_time_s)


def time_single_signature(
    method_name: str,
    n: int,
    wl: int,
    *,
    repeats: int = 20,
    seed: int = 0,
) -> float:
    """Median wall-clock seconds to compute one signature.

    The method is fitted on the random matrix beforehand (CS training is
    excluded from the measurement, matching the paper's methodology).
    """
    rng = np.random.default_rng(seed)
    Sw = rng.random((n, wl))
    method = make_method_factory(method_name)()
    method.fit(Sw)
    # Warm-up pass so allocation effects don't land in the first sample.
    method.transform(Sw)
    times = np.empty(max(repeats, 1))
    for i in range(times.shape[0]):
        start = time.perf_counter()
        method.transform(Sw)
        times[i] = time.perf_counter() - start
    return float(np.median(times))


def run(
    *,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    wl_grid: tuple[int, ...] = DEFAULT_WL_GRID,
    n_grid: tuple[int, ...] = DEFAULT_N_GRID,
    fixed_n: int = 100,
    fixed_wl: int = 100,
    repeats: int = 20,
    seed: int = 0,
) -> list[TimingPoint]:
    """Run both Figure 5 sweeps; returns one timing point per cell.

    Methods with a fixed block count are skipped for matrix sizes where
    ``l > n`` (e.g. CS-40 needs at least 40 dimensions).
    """
    points: list[TimingPoint] = []

    def blocks_of(name: str) -> int | None:
        if name.lower().startswith("cs-") and name.lower() != "cs-all":
            return int(name[3:])
        return None

    for wl in wl_grid:
        for m in methods:
            b = blocks_of(m)
            if b is not None and b > fixed_n:
                continue
            t = time_single_signature(m, fixed_n, wl, repeats=repeats, seed=seed)
            points.append(TimingPoint("wl", m, wl, fixed_n, t))
    for n in n_grid:
        for m in methods:
            b = blocks_of(m)
            if b is not None and b > n:
                continue
            t = time_single_signature(m, n, fixed_wl, repeats=repeats, seed=seed)
            points.append(TimingPoint("n", m, fixed_wl, n, t))
    return points


def main(argv: list[str] | None = None) -> None:
    """CLI entry point for the Figure 5 timing sweeps."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--wl-grid", nargs="*", type=int,
                        default=list(DEFAULT_WL_GRID))
    parser.add_argument("--n-grid", nargs="*", type=int,
                        default=list(DEFAULT_N_GRID))
    parser.add_argument("--methods", nargs="*", default=list(DEFAULT_METHODS))
    parser.add_argument("--csv", type=str, default=None)
    args = parser.parse_args(argv)
    points = run(
        methods=tuple(args.methods),
        wl_grid=tuple(args.wl_grid),
        n_grid=tuple(args.n_grid),
        repeats=args.repeats,
        seed=args.seed,
    )
    rows = [p.row() for p in points]
    print_table(
        HEADERS,
        rows,
        title="Figure 5 — time to compute one signature vs wl (a) and n (b)",
    )
    if args.csv:
        save_csv(args.csv, HEADERS, rows)


if __name__ == "__main__":
    main()

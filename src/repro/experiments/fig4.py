"""Figure 4 reproduction: compression quality vs signature length.

For the first four segments and signature lengths l in {5, 10, 20, 40,
All}, this experiment computes:

* **Figure 4a** — the 2-D Jensen-Shannon divergence (Equation 4) between
  the CS signature sets and the original (sorted) data;
* **Figure 4b** — the corresponding ML scores;

both in the standard configuration and with the imaginary (derivative)
components removed (the ``-R`` variants, modelled as zeroed imaginary
parts for the divergence and dropped features for the ML score).

Expected shapes, as in the paper: JS divergence decreases and the ML
score increases monotonically with l; Fault and Power react strongly to
l, Infrastructure barely; dropping the imaginary parts raises the JS
divergence everywhere but hurts the ML score mainly for Power and Fault.

The experiment is the registered ``fig4`` scenario spec; this module
keeps the historical API (:func:`run`, :class:`Fig4Point`,
:func:`segment_js_divergence`) and CLI as thin shims over the generic
runner (equivalent to ``python -m repro run fig4``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.analysis.similarity import cs_compression_divergence
from repro.core.pipeline import CorrelationWiseSmoothing
from repro.datasets.generators import SegmentData
from repro.datasets.recipes import DatasetRecipe
from repro.scenarios.builtin import PAPER_SEGMENTS
from repro.scenarios.evaluations import LENGTH_SWEEP_HEADERS
from repro.scenarios.options import (
    add_shared_options,
    options_from_args,
    sinks_from_args,
)
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import execute

__all__ = ["FIG4_SEGMENTS", "SIGNATURE_LENGTHS", "run", "main", "Fig4Point"]

FIG4_SEGMENTS: tuple[str, ...] = PAPER_SEGMENTS

#: The x-axis of Figure 4.
SIGNATURE_LENGTHS: tuple[int | str, ...] = (5, 10, 20, 40, "all")

HEADERS = LENGTH_SWEEP_HEADERS


@dataclass
class Fig4Point:
    """One point of the Figure 4 curves."""

    segment: str
    length: str
    real_only: bool
    js_divergence: float
    ml_score: float
    signature_size: int

    def row(self) -> tuple:
        return (
            self.segment,
            self.length,
            self.real_only,
            round(self.js_divergence, 4),
            round(self.ml_score, 4),
            self.signature_size,
        )


def segment_js_divergence(
    segment: SegmentData, blocks: int | str, *, real_only: bool, bins: int = 64
) -> float:
    """Mean JS divergence over the segment's components at one length.

    As in the ML harness, a block count above a component's sensor count
    clamps to one block per sensor (the CS-All configuration), so the
    full l-sweep runs on every segment.
    """
    values = []
    for comp in segment.components:
        l = blocks if isinstance(blocks, str) else min(int(blocks), comp.n_sensors)
        cs = CorrelationWiseSmoothing(blocks=l).fit(comp.matrix)
        sorted_data = cs.sort(comp.matrix)
        sigs = cs.transform_series(comp.matrix, segment.spec.wl, segment.spec.ws)
        if real_only:
            # The -R configuration discards the derivative information; the
            # imaginary half of the comparison degrades accordingly.
            sigs = sigs.real.astype(np.complex128)
        _, _, js = cs_compression_divergence(sorted_data, sigs, bins=bins)
        values.append(js)
    return float(np.mean(values))


def run(
    *,
    segments: tuple[str, ...] = FIG4_SEGMENTS,
    lengths: tuple[int | str, ...] = SIGNATURE_LENGTHS,
    trees: int = 50,
    seed: int = 0,
    scale: float = 1.0,
    with_real_only: bool = True,
) -> list[Fig4Point]:
    """Compute the Figure 4 curves; returns one point per cell."""
    spec = get_scenario("fig4").with_datasets(
        DatasetRecipe(segment=name, seed=seed, scale=scale)
        for name in segments
    ).with_evaluation(
        lengths=tuple(lengths),
        with_real_only=bool(with_real_only),
        trees=trees,
        seed=seed,
    )
    return execute(spec).extras["points"]


def main(argv: list[str] | None = None) -> None:
    """CLI entry point for the Figure 4 sweep."""
    parser = argparse.ArgumentParser(description=__doc__)
    add_shared_options(
        parser, "--trees", "--seed", "--scale", "--smoke", "--cache-dir",
        "--csv", "--jsonl", "--markdown", "--segments",
    )
    parser.add_argument("--no-real-only", action="store_true",
                        help="skip the -R (real components only) variants")
    args = parser.parse_args(argv)
    overrides = {"with_real_only": False} if args.no_real_only else None
    execute(
        get_scenario("fig4"),
        options=options_from_args(args, evaluation=overrides),
        sinks=sinks_from_args(args),
    )


if __name__ == "__main__":
    main()

"""Figure 4 reproduction: compression quality vs signature length.

For the first four segments and signature lengths l in {5, 10, 20, 40,
All}, this experiment computes:

* **Figure 4a** — the 2-D Jensen-Shannon divergence (Equation 4) between
  the CS signature sets and the original (sorted) data;
* **Figure 4b** — the corresponding ML scores;

both in the standard configuration and with the imaginary (derivative)
components removed (the ``-R`` variants, modelled as zeroed imaginary
parts for the divergence and dropped features for the ML score).

Expected shapes, as in the paper: JS divergence decreases and the ML
score increases monotonically with l; Fault and Power react strongly to
l, Infrastructure barely; dropping the imaginary parts raises the JS
divergence everywhere but hurts the ML score mainly for Power and Fault.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.analysis.similarity import cs_compression_divergence
from repro.core.pipeline import CorrelationWiseSmoothing
from repro.datasets.generators import SegmentData, generate_segment
from repro.experiments.harness import run_method_on_segment
from repro.experiments.reporting import print_table, save_csv

__all__ = ["FIG4_SEGMENTS", "SIGNATURE_LENGTHS", "run", "main", "Fig4Point"]

FIG4_SEGMENTS: tuple[str, ...] = (
    "fault",
    "application",
    "power",
    "infrastructure",
)

#: The x-axis of Figure 4.
SIGNATURE_LENGTHS: tuple[int | str, ...] = (5, 10, 20, 40, "all")

HEADERS = (
    "Segment",
    "l",
    "Real only",
    "JS divergence",
    "ML score",
    "Sig. size",
)


@dataclass
class Fig4Point:
    """One point of the Figure 4 curves."""

    segment: str
    length: str
    real_only: bool
    js_divergence: float
    ml_score: float
    signature_size: int

    def row(self) -> tuple:
        return (
            self.segment,
            self.length,
            self.real_only,
            round(self.js_divergence, 4),
            round(self.ml_score, 4),
            self.signature_size,
        )


def segment_js_divergence(
    segment: SegmentData, blocks: int | str, *, real_only: bool, bins: int = 64
) -> float:
    """Mean JS divergence over the segment's components at one length.

    As in the ML harness, a block count above a component's sensor count
    clamps to one block per sensor (the CS-All configuration), so the
    full l-sweep runs on every segment.
    """
    values = []
    for comp in segment.components:
        l = blocks if isinstance(blocks, str) else min(int(blocks), comp.n_sensors)
        cs = CorrelationWiseSmoothing(blocks=l).fit(comp.matrix)
        sorted_data = cs.sort(comp.matrix)
        sigs = cs.transform_series(comp.matrix, segment.spec.wl, segment.spec.ws)
        if real_only:
            # The -R configuration discards the derivative information; the
            # imaginary half of the comparison degrades accordingly.
            sigs = sigs.real.astype(np.complex128)
        _, _, js = cs_compression_divergence(sorted_data, sigs, bins=bins)
        values.append(js)
    return float(np.mean(values))


def run(
    *,
    segments: tuple[str, ...] = FIG4_SEGMENTS,
    lengths: tuple[int | str, ...] = SIGNATURE_LENGTHS,
    trees: int = 50,
    seed: int = 0,
    scale: float = 1.0,
    with_real_only: bool = True,
) -> list[Fig4Point]:
    """Compute the Figure 4 curves; returns one point per cell."""
    points: list[Fig4Point] = []
    for seg_name in segments:
        segment = generate_segment(seg_name, seed=seed, scale=scale)
        for l in lengths:
            for real_only in (False, True) if with_real_only else (False,):
                method = f"cs-{l}"
                js = segment_js_divergence(segment, l, real_only=real_only)
                res = run_method_on_segment(
                    segment, method, trees=trees, seed=seed, real_only=real_only
                )
                points.append(
                    Fig4Point(
                        segment=seg_name,
                        length=str(l),
                        real_only=real_only,
                        js_divergence=js,
                        ml_score=res.ml_score,
                        signature_size=res.signature_size,
                    )
                )
    return points


def main(argv: list[str] | None = None) -> None:
    """CLI entry point for the Figure 4 sweep."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trees", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--segments", nargs="*", default=list(FIG4_SEGMENTS))
    parser.add_argument("--no-real-only", action="store_true",
                        help="skip the -R (real components only) variants")
    parser.add_argument("--csv", type=str, default=None)
    args = parser.parse_args(argv)
    points = run(
        segments=tuple(args.segments),
        trees=args.trees,
        seed=args.seed,
        scale=args.scale,
        with_real_only=not args.no_real_only,
    )
    rows = [p.row() for p in points]
    print_table(
        HEADERS,
        rows,
        title="Figure 4 — JS divergence (a) and ML score (b) vs signature length",
    )
    if args.csv:
        save_csv(args.csv, HEADERS, rows)


if __name__ == "__main__":
    main()

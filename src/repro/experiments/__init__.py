"""Runnable reproductions of every table and figure in the paper.

Every experiment is a declarative scenario spec registered in
``repro.scenarios.builtin`` and executed by the generic runner; the
modules below are thin compatibility shims that keep the historical
``run()`` APIs and per-script CLIs (``python -m repro.experiments.fig3``)
working.  Prefer the unified CLI: ``python -m repro list`` /
``python -m repro run fig3``.  See EXPERIMENTS.md for the scenario ->
paper-artifact map.

=============  =====================================================
Module         Paper artifact
=============  =====================================================
``table1``     Table I — dataset-collection overview
``fig3``       Figure 3 — times, signature sizes, ML scores
``fig4``       Figure 4 — JS divergence and ML score vs signature length
``fig5``       Figure 5 — signature-computation scalability
``fig6``       Figure 6 — application signature heatmaps (160 blocks)
``fig7``       Figure 7 — LAMMPS heatmaps across three architectures
``crossarch``  Section IV-F — cross-architecture classification scores
=============  =====================================================
"""

from repro.experiments.harness import (
    DEFAULT_METHODS,
    ExperimentResult,
    run_method_on_segment,
)

__all__ = ["DEFAULT_METHODS", "ExperimentResult", "run_method_on_segment"]

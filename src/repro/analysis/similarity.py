"""Compression-fidelity metrics (Section IV-A.2).

The paper measures how faithfully CS signatures represent the original
data with a Jensen-Shannon divergence over *2-D collapsed* probability
distributions: instead of the joint distribution over all ``n``
dimensions (hopeless — curse of dimensionality), the distribution
``P(v, y)`` is the probability of value ``v`` on dimension ``y``,
computed from each dimension's marginal histogram and divided by ``n`` so
the whole 2-D array is a probability distribution.  CS-sorted data maps
dimension-for-dimension onto signature blocks, so the signature set is
first nearest-neighbor-interpolated along the dimension axis back to
``n`` rows and then compared with Equation 4:

    JS(Pd || Ps) = H((Pd + Ps) / 2) - (H(Pd) + H(Ps)) / 2

with ``H`` the Shannon entropy.  Using base-2 logarithms bounds the
divergence to ``[0, 1]``.  The procedure runs twice — real components
against the sorted/normalized data, imaginary components against its
backward finite differences — and the two divergences are averaged.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "shannon_entropy",
    "kl_divergence",
    "js_divergence_2d",
    "nearest_neighbor_upsample",
    "collapsed_distribution",
    "cs_compression_divergence",
]


def shannon_entropy(p: np.ndarray) -> float:
    """Base-2 Shannon entropy of a (possibly multi-dim) distribution."""
    p = np.asarray(p, dtype=np.float64)
    if np.any(p < 0):
        raise ValueError("probabilities must be non-negative")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ValueError(f"distribution sums to {total}, expected 1")
    nz = p[p > 0]
    return float(-(nz * np.log2(nz)).sum())


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Base-2 Kullback-Leibler divergence ``D(p || q)``.

    Infinite when ``p`` has mass where ``q`` has none.
    """
    p = np.asarray(p, dtype=np.float64).ravel()
    q = np.asarray(q, dtype=np.float64).ravel()
    if p.shape != q.shape:
        raise ValueError("p and q must have the same shape")
    mask = p > 0
    if np.any(q[mask] == 0):
        return float("inf")
    return float((p[mask] * np.log2(p[mask] / q[mask])).sum())


def nearest_neighbor_upsample(X: np.ndarray, new_rows: int) -> np.ndarray:
    """Nearest-neighbor interpolation along axis 0 (the dimension axis).

    Maps ``l`` signature blocks onto ``new_rows`` sensor dimensions so the
    two datasets' dimension axes coincide, as the paper prescribes.
    """
    X = np.asarray(X)
    if X.ndim < 1:
        raise ValueError("input must have at least one axis")
    l = X.shape[0]
    if new_rows < 1:
        raise ValueError("new_rows must be >= 1")
    # Row j of the output takes the block whose center is nearest to the
    # (normalized) position of dimension j.
    src = np.floor((np.arange(new_rows) + 0.5) * l / new_rows).astype(np.intp)
    np.clip(src, 0, l - 1, out=src)
    return X[src]


def collapsed_distribution(
    data: np.ndarray,
    bins: int = 64,
    value_range: tuple[float, float] | None = None,
) -> np.ndarray:
    """The paper's 2-D collapsed distribution ``P(v, y)``.

    Parameters
    ----------
    data:
        Matrix ``(n_dims, samples)``; each row's marginal histogram over
        ``bins`` value bins is normalized and divided by ``n_dims``.
    bins:
        Number of value bins.
    value_range:
        Histogram range; defaults to the data's min/max.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_dims, bins)`` summing to 1.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    n, t = data.shape
    if t < 1:
        raise ValueError("need at least one sample per dimension")
    if value_range is None:
        lo, hi = float(data.min()), float(data.max())
    else:
        lo, hi = map(float, value_range)
    if not hi > lo:
        hi = lo + 1.0  # degenerate (constant) data: all mass in bin 0
    # Vectorized per-row histogram: bin index per element, then bincount
    # over a combined (row, bin) key.
    idx = np.clip(((data - lo) / (hi - lo) * bins).astype(np.intp), 0, bins - 1)
    keys = (np.arange(n)[:, None] * bins + idx).ravel()
    counts = np.bincount(keys, minlength=n * bins).reshape(n, bins)
    return counts / (t * n)


def js_divergence_2d(
    A: np.ndarray,
    B: np.ndarray,
    *,
    bins: int = 64,
    value_range: tuple[float, float] | None = None,
) -> float:
    """Equation 4 between two dimension-aligned datasets.

    ``A`` and ``B`` must have the same number of rows (dimensions); their
    shared value range is used for binning unless given explicitly.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("inputs must be 2-D matrices")
    if A.shape[0] != B.shape[0]:
        raise ValueError(
            f"dimension mismatch: {A.shape[0]} vs {B.shape[0]} rows; "
            "upsample the compressed dataset first"
        )
    if value_range is None:
        lo = min(float(A.min()), float(B.min()))
        hi = max(float(A.max()), float(B.max()))
        value_range = (lo, hi)
    Pd = collapsed_distribution(A, bins=bins, value_range=value_range)
    Ps = collapsed_distribution(B, bins=bins, value_range=value_range)
    js = shannon_entropy((Pd + Ps) / 2.0) - (
        shannon_entropy(Pd) + shannon_entropy(Ps)
    ) / 2.0
    # Clip tiny negative excursions from float round-off.
    return float(max(js, 0.0))


def cs_compression_divergence(
    sorted_data: np.ndarray,
    signatures: np.ndarray,
    *,
    bins: int = 64,
) -> tuple[float, float, float]:
    """Average JS divergence between CS signatures and the original data.

    Parameters
    ----------
    sorted_data:
        The original data after the CS *sorting* stage: shape ``(n, t)``,
        values in ``[0, 1]``.
    signatures:
        Complex signature matrix ``(num_windows, l)`` computed from the
        same data.

    Returns
    -------
    (js_real, js_imag, js_mean):
        Divergence of the real components against the values, of the
        imaginary components against the backward differences, and their
        average (the quantity plotted in Figure 4a).
    """
    sorted_data = np.asarray(sorted_data, dtype=np.float64)
    signatures = np.asarray(signatures)
    if signatures.ndim != 2:
        raise ValueError("signatures must be a (num_windows, l) matrix")
    n = sorted_data.shape[0]
    sig_real = nearest_neighbor_upsample(signatures.real.T, n)
    sig_imag = nearest_neighbor_upsample(signatures.imag.T, n)
    js_real = js_divergence_2d(sorted_data, sig_real, bins=bins)
    derivs = np.diff(sorted_data, axis=1, prepend=sorted_data[:, :1])
    js_imag = js_divergence_2d(derivs, sig_imag, bins=bins)
    return js_real, js_imag, (js_real + js_imag) / 2.0

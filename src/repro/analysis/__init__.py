"""Analysis utilities: compression fidelity, visualization, root cause.

* :mod:`~repro.analysis.similarity` — the paper's 2-D Jensen-Shannon
  divergence between original data and CS signatures (Section IV-A.2,
  Equation 4), plus entropy/KL building blocks;
* :mod:`~repro.analysis.visualization` — image-like rendering of sensor
  matrices and signature sets (ASCII and PGM/PPM export, no matplotlib
  required);
* :mod:`~repro.analysis.rootcause` — mapping signature blocks back to the
  raw sensors that feed them ("root cause analysis is simplified").
"""

from repro.analysis.rootcause import (
    BlockFinding,
    block_sensors,
    explain_difference,
    findings_payload,
)
from repro.analysis.similarity import (
    cs_compression_divergence,
    js_divergence_2d,
    kl_divergence,
    nearest_neighbor_upsample,
    shannon_entropy,
)
from repro.analysis.visualization import (
    ascii_heatmap,
    save_pgm,
    save_ppm,
    signature_heatmaps,
    to_grayscale,
)

__all__ = [
    "BlockFinding",
    "ascii_heatmap",
    "block_sensors",
    "cs_compression_divergence",
    "explain_difference",
    "findings_payload",
    "js_divergence_2d",
    "kl_divergence",
    "nearest_neighbor_upsample",
    "save_pgm",
    "save_ppm",
    "shannon_entropy",
    "signature_heatmaps",
    "to_grayscale",
]

"""Root-cause drill-down from signature blocks to raw sensors.

"As the set of raw sensors belonging to a block is clearly defined, root
cause analysis is simplified" (Section III-C.3): when an ODA model flags
a signature, the deviating blocks can be mapped straight back to sensor
names.  This module implements that mapping plus a simple
signature-difference explainer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import block_sensor_map
from repro.core.model import CSModel

__all__ = [
    "block_sensors",
    "explain_difference",
    "findings_payload",
    "BlockFinding",
]


def block_sensors(model: CSModel, l: int, block: int) -> tuple[str, ...]:
    """Names of the raw sensors aggregated into one signature block.

    Parameters
    ----------
    model:
        Trained CS model (must carry sensor names).
    l:
        Signature length the block index refers to.
    block:
        Block index in ``[0, l)``.
    """
    if model.sensor_names is None:
        raise ValueError("CS model carries no sensor names")
    if not 0 <= block < l:
        raise ValueError(f"block must be in [0, {l}), got {block}")
    rows = block_sensor_map(model.n_sensors, l, model.permutation)[block]
    return tuple(model.sensor_names[i] for i in rows)


@dataclass(frozen=True)
class BlockFinding:
    """One deviating block with its provenance."""

    block: int
    delta_real: float
    delta_imag: float
    sensors: tuple[str, ...]

    @property
    def magnitude(self) -> float:
        """Combined deviation magnitude used for ranking."""
        return float(np.hypot(self.delta_real, self.delta_imag))

    def to_dict(self, *, ndigits: int | None = None) -> dict:
        """JSON-ready form (``ndigits`` rounds the float fields).

        Key order and rounding are fixed so serialized findings are
        byte-stable — alert payloads embed these in replayable JSONL.
        """

        def _num(x: float) -> float:
            return round(x, ndigits) if ndigits is not None else x

        return {
            "block": self.block,
            "delta_real": _num(self.delta_real),
            "delta_imag": _num(self.delta_imag),
            "magnitude": _num(self.magnitude),
            "sensors": list(self.sensors),
        }


def explain_difference(
    model: CSModel,
    reference: np.ndarray,
    observed: np.ndarray,
    *,
    top: int = 3,
) -> list[BlockFinding]:
    """Rank the blocks that differ most between two signatures.

    Parameters
    ----------
    model:
        The CS model both signatures were computed with.
    reference, observed:
        Complex signatures of equal length ``l`` (e.g. a healthy baseline
        and an anomalous observation).
    top:
        Number of findings to return (largest deviation first).

    Returns
    -------
    list of BlockFinding
        Each finding lists the real/imaginary deltas and the raw sensors
        feeding the block, ready for operator inspection.
    """
    ref = np.asarray(reference)
    obs = np.asarray(observed)
    if ref.shape != obs.shape or ref.ndim != 1:
        raise ValueError("signatures must be 1-D and of equal length")
    l = ref.shape[0]
    if top < 1:
        raise ValueError("top must be >= 1")
    delta = obs - ref
    magnitude = np.hypot(delta.real, delta.imag)
    order = np.argsort(magnitude)[::-1][: min(top, l)]
    findings = []
    for b in order:
        findings.append(
            BlockFinding(
                block=int(b),
                delta_real=float(delta.real[b]),
                delta_imag=float(delta.imag[b]),
                sensors=block_sensors(model, l, int(b)),
            )
        )
    return findings


def findings_payload(
    findings: list[BlockFinding], *, ndigits: int | None = None
) -> list[dict]:
    """Serializable rendering of a findings list (for alert payloads)."""
    return [f.to_dict(ndigits=ndigits) for f in findings]

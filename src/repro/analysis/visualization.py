"""Image-like rendering of sensor matrices and signature sets.

CS signatures are designed to be "easily manipulated, visualized and
compared"; this module renders them without any plotting dependency:

* grayscale conversion with min-max scaling ("darker colors correspond to
  higher values", matching the paper's heatmaps),
* binary PGM/PPM export (viewable by any image tool),
* ASCII heatmaps for terminal inspection,
* assembly of the paired real/imaginary signature heatmaps of
  Figures 2, 6 and 7, including the solid separators that mark run
  boundaries.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = [
    "to_grayscale",
    "save_pgm",
    "save_ppm",
    "ascii_heatmap",
    "signature_heatmaps",
    "add_boundaries",
]


def to_grayscale(
    matrix: np.ndarray,
    *,
    invert: bool = True,
    value_range: tuple[float, float] | None = None,
) -> np.ndarray:
    """Min-max scale a matrix to uint8 grayscale.

    ``invert=True`` maps high values to dark pixels, following the
    paper's "darker colors correspond to higher values" convention.
    """
    M = np.asarray(matrix, dtype=np.float64)
    if M.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {M.shape}")
    if value_range is None:
        lo, hi = float(M.min()), float(M.max())
    else:
        lo, hi = map(float, value_range)
    span = hi - lo if hi > lo else 1.0
    unit = np.clip((M - lo) / span, 0.0, 1.0)
    if invert:
        unit = 1.0 - unit
    return np.round(unit * 255.0).astype(np.uint8)


def save_pgm(path: str | Path, gray: np.ndarray) -> Path:
    """Write a uint8 grayscale image as binary PGM (P5)."""
    gray = np.asarray(gray)
    if gray.ndim != 2 or gray.dtype != np.uint8:
        raise ValueError("expected a 2-D uint8 array")
    path = Path(path)
    h, w = gray.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode("ascii"))
        fh.write(gray.tobytes())
    return path


def save_ppm(path: str | Path, rgb: np.ndarray) -> Path:
    """Write a uint8 RGB image as binary PPM (P6)."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3 or rgb.dtype != np.uint8:
        raise ValueError("expected a (H, W, 3) uint8 array")
    path = Path(path)
    h, w, _ = rgb.shape
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        fh.write(rgb.tobytes())
    return path


_ASCII_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    matrix: np.ndarray,
    *,
    max_width: int = 100,
    max_height: int = 24,
    value_range: tuple[float, float] | None = None,
) -> str:
    """Render a matrix as an ASCII heatmap (denser character = higher).

    The matrix is block-averaged down to at most ``max_width`` columns and
    ``max_height`` rows so arbitrary sizes fit a terminal.
    """
    M = np.asarray(matrix, dtype=np.float64)
    if M.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {M.shape}")
    h = min(max_height, M.shape[0])
    w = min(max_width, M.shape[1])
    # Block-average resize via bincount over target cells.
    row_of = (np.arange(M.shape[0]) * h // M.shape[0]).astype(np.intp)
    col_of = (np.arange(M.shape[1]) * w // M.shape[1]).astype(np.intp)
    keys = row_of[:, None] * w + col_of[None, :]
    sums = np.bincount(keys.ravel(), weights=M.ravel(), minlength=h * w)
    counts = np.bincount(keys.ravel(), minlength=h * w)
    small = (sums / counts).reshape(h, w)
    if value_range is None:
        lo, hi = float(small.min()), float(small.max())
    else:
        lo, hi = map(float, value_range)
    span = hi - lo if hi > lo else 1.0
    levels = np.clip(
        ((small - lo) / span * (len(_ASCII_RAMP) - 1)).round().astype(int),
        0,
        len(_ASCII_RAMP) - 1,
    )
    return "\n".join("".join(_ASCII_RAMP[v] for v in row) for row in levels)


def signature_heatmaps(
    signatures: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Split a complex ``(num_windows, l)`` signature set into heatmaps.

    Returns ``(real, imag)``, each of shape ``(l, num_windows)`` so that —
    as in the paper's figures — "each column corresponds to a separate
    signature" and rows run over blocks.
    """
    sigs = np.asarray(signatures)
    if sigs.ndim != 2:
        raise ValueError("signatures must be a (num_windows, l) matrix")
    return np.ascontiguousarray(sigs.real.T), np.ascontiguousarray(sigs.imag.T)


def add_boundaries(
    gray: np.ndarray, columns: np.ndarray | list[int], value: int = 0
) -> np.ndarray:
    """Draw solid vertical separator lines at the given column indices.

    Used to mark the end of application runs, as in Figures 6 and 7.
    Returns a copy; out-of-range columns are ignored.
    """
    gray = np.asarray(gray)
    if gray.ndim != 2:
        raise ValueError("expected a 2-D image")
    out = gray.copy()
    for c in np.asarray(columns, dtype=np.intp):
        if 0 <= c < out.shape[1]:
            out[:, c] = value
    return out

"""Monitoring framework substrate (DCDB / LDMS stand-in).

HPC-ODA's data was acquired with the DCDB and LDMS monitoring frameworks;
the collection itself is stored as one CSV per sensor with
timestamp/value rows (Section II-A).  This subpackage provides the pieces
of that pipeline the reproduction needs:

* :mod:`~repro.monitoring.sensor_tree` — hierarchical (DCDB-style) sensor
  naming and lookup;
* :mod:`~repro.monitoring.storage` — the per-sensor CSV on-disk format,
  plus whole-segment save/load;
* :mod:`~repro.monitoring.alignment` — interpolation of unaligned,
  unevenly sampled series onto a common clock (the "interpolation
  pre-processing step" of Section III-A);
* :mod:`~repro.monitoring.streaming` — an online sliding-window feed that
  emits CS signatures as new samples arrive (in-band ODA operation),
  backed by the incremental engine core (O(n) per emitted signature).

Fleet-scale operation composes these pieces with :mod:`repro.engine`:
:meth:`SensorTree.parent_groups` enumerates the monitored components and
:class:`~repro.engine.fleet.FleetSignatureEngine` batches their
signature computation.
"""

from repro.monitoring.alignment import align_series, build_sensor_matrix
from repro.monitoring.sensor_tree import SensorNode, SensorTree
from repro.monitoring.storage import (
    load_segment,
    load_sensor_csv,
    save_segment,
    save_sensor_csv,
)
from repro.monitoring.streaming import OnlineSignatureStream

__all__ = [
    "OnlineSignatureStream",
    "SensorNode",
    "SensorTree",
    "align_series",
    "build_sensor_matrix",
    "load_segment",
    "load_sensor_csv",
    "save_segment",
    "save_sensor_csv",
]

"""Append-only, time-partitioned columnar telemetry store.

The live service consumes telemetry tick by tick; evaluating a detector
change against *recorded* telemetry should not.  This module is the
on-disk plane for that: a directory of immutable, time-partitioned
``.npz`` partitions — one column-major ``(sensors, ticks)`` plane per
(partition, node) — plus a small JSON index, written with the
:func:`~repro.monitoring.storage.atomic_savez` fsync discipline so a
crash mid-write (or mid-compaction) can never leave a torn partition.

Format ``repro-telestore/v1``::

    <root>/
      store.json                    # manifest + partition index (atomic)
      part-<t0>-<t1>.npz            # one partition: plane_<i> per node
      checkpoints/                  # optional: detector checkpoints the
                                    # retention policy must respect

``store.json`` carries the node schema (paths, sensor counts, dtypes),
free-form ``meta`` (the service layer records fleet fingerprint, guard
status and live chunk size there) and the partition index: tick range,
byte size and SHA-256 content hash per partition.  Each partition is
additionally self-describing (``manifest`` member, format
``repro-telestore-part/v1``) so a damaged index never orphans data.

Planes are stored **column-major** (Fortran order): one tick's column
is contiguous, so slicing an arbitrary ``[t0, t1)`` sub-range out of a
memory-mapped partition touches exactly that range's pages.  Reading
goes through PR 5's zip-offset mmap path
(:func:`~repro.monitoring.storage.load_npz_arrays`): :meth:`TeleStore.scan`
iterates a store of any size with peak memory bounded by one partition —
fleet-months never need to fit in RAM.

Retention is explicit: :meth:`TeleStore.compact` merges adjacent small
partitions (new files first, index flip second, unlink last — crash-safe
at every step), :meth:`TeleStore.prune` drops the oldest partitions but
**refuses** — with a typed :class:`RetentionError` — to drop any
partition a detector checkpoint still references (a ``--resume`` after
such a prune could otherwise never replay its remaining ticks).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.monitoring.storage import _fsync_dir, atomic_savez, load_npz_arrays

__all__ = [
    "STORE_FORMAT",
    "PARTITION_FORMAT",
    "TeleStoreError",
    "RetentionError",
    "PartitionInfo",
    "TelemetryRecorder",
    "TeleStore",
]

#: On-disk format version of the store directory (``store.json``).
STORE_FORMAT = "repro-telestore/v1"
#: Format version of each partition's embedded manifest.
PARTITION_FORMAT = "repro-telestore-part/v1"

_STORE_JSON = "store.json"
_CHECKPOINT_DIR = "checkpoints"


class TeleStoreError(ValueError):
    """A telemetry store is malformed, misused or failed validation."""


class RetentionError(TeleStoreError):
    """Retention would drop data a checkpoint still references.

    ``partition`` is the offending partition file name, ``checkpoint``
    the path of the checkpoint pinning it, ``next_lo`` the first sample
    that checkpoint still needs.
    """

    def __init__(
        self, message: str, *, partition: str, checkpoint: str, next_lo: int
    ):
        super().__init__(message)
        self.partition = partition
        self.checkpoint = checkpoint
        self.next_lo = int(next_lo)


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Durable atomic JSON write (same discipline as ``atomic_savez``)."""
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    finally:
        if tmp.exists():
            tmp.unlink()


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


@dataclass(frozen=True)
class PartitionInfo:
    """One immutable partition: ``[t0, t1)`` ticks in ``file``."""

    file: str
    t0: int
    t1: int
    sha256: str
    bytes: int

    @property
    def ticks(self) -> int:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "t0": self.t0,
            "t1": self.t1,
            "sha256": self.sha256,
            "bytes": self.bytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PartitionInfo":
        return cls(
            file=str(d["file"]),
            t0=int(d["t0"]),
            t1=int(d["t1"]),
            sha256=str(d["sha256"]),
            bytes=int(d["bytes"]),
        )


def _partition_name(t0: int, t1: int) -> str:
    return f"part-{t0:010d}-{t1:010d}.npz"


def _validate_nodes(nodes: Mapping[str, tuple[int, np.dtype]]) -> list[dict]:
    if not nodes:
        raise TeleStoreError("a telemetry store needs at least one node")
    out = []
    for path in sorted(nodes):
        sensors, dtype = nodes[path]
        dtype = np.dtype(dtype)
        if dtype.hasobject:
            raise TeleStoreError(
                f"node {path!r}: object dtypes cannot be stored "
                "(not memory-mappable)"
            )
        if int(sensors) < 1:
            raise TeleStoreError(f"node {path!r}: needs >= 1 sensor rows")
        out.append(
            {"path": path, "sensors": int(sensors), "dtype": dtype.str}
        )
    return out


def _write_partition(
    root: Path,
    node_schema: Sequence[dict],
    t0: int,
    planes: Mapping[str, np.ndarray],
) -> PartitionInfo:
    """Write one immutable partition file and return its index entry."""
    m = next(iter(planes.values())).shape[1]
    t1 = t0 + m
    name = _partition_name(t0, t1)
    manifest = {
        "format": PARTITION_FORMAT,
        "t0": int(t0),
        "t1": int(t1),
        "paths": [n["path"] for n in node_schema],
    }
    arrays: dict[str, np.ndarray] = {
        "manifest": np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
    }
    for i, node in enumerate(node_schema):
        plane = planes[node["path"]]
        # Column-major so one tick's column is contiguous: scans of a
        # tick sub-range fault in exactly that range's pages.
        arrays[f"plane_{i}"] = np.asfortranarray(plane)
    path = root / name
    atomic_savez(path, **arrays)
    return PartitionInfo(
        file=name,
        t0=int(t0),
        t1=int(t1),
        sha256=_sha256_file(path),
        bytes=path.stat().st_size,
    )


class TelemetryRecorder:
    """Append-only writer: buffers bursts, flushes full partitions.

    Create a fresh store with :meth:`create` (declaring the node schema
    up front) or resume appending to an existing one with :meth:`open`.
    Every :meth:`append` must carry the same tick count for every node
    (the fleet is time-aligned); sensor counts and dtypes may differ
    per node (a ragged fleet).  ``close()`` flushes the tail partition
    and finalizes the index — a recorder is a context manager.
    """

    def __init__(
        self,
        root: Path,
        node_schema: list[dict],
        *,
        partition_ticks: int,
        meta: dict,
        partitions: list[PartitionInfo],
        next_tick: int,
    ):
        self.root = root
        self._schema = node_schema
        self._dtypes = {
            n["path"]: np.dtype(n["dtype"]) for n in node_schema
        }
        self._sensors = {n["path"]: n["sensors"] for n in node_schema}
        self.partition_ticks = int(partition_ticks)
        self.meta = dict(meta)
        self._partitions = list(partitions)
        self._next_tick = int(next_tick)
        self._buf: dict[str, list[np.ndarray]] = {
            n["path"]: [] for n in node_schema
        }
        self._buffered = 0
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str | Path,
        nodes: Mapping[str, tuple[int, np.dtype]],
        *,
        partition_ticks: int = 1024,
        meta: dict | None = None,
    ) -> "TelemetryRecorder":
        """Start a fresh store at ``root`` (must not already be one)."""
        if partition_ticks < 1:
            raise TeleStoreError("partition_ticks must be >= 1")
        root = Path(root)
        if (root / _STORE_JSON).exists():
            raise TeleStoreError(
                f"{root} already holds a telemetry store; use "
                "TelemetryRecorder.open() to append"
            )
        root.mkdir(parents=True, exist_ok=True)
        rec = cls(
            root,
            _validate_nodes(nodes),
            partition_ticks=partition_ticks,
            meta=meta or {},
            partitions=[],
            next_tick=0,
        )
        rec._write_index()
        return rec

    @classmethod
    def open(cls, root: str | Path) -> "TelemetryRecorder":
        """Resume appending to an existing store (append-only: new
        samples continue at the store's current ``t1``)."""
        store = TeleStore(root)
        return cls(
            store.root,
            store.node_schema,
            partition_ticks=store.partition_ticks,
            meta=store.meta,
            partitions=list(store.partitions),
            next_tick=store.t1,
        )

    # ------------------------------------------------------------------
    @property
    def paths(self) -> list[str]:
        return [n["path"] for n in self._schema]

    def append(self, burst: Mapping[str, np.ndarray]) -> None:
        """Buffer one time-aligned burst: ``{path: (sensors, m)}``."""
        if self._closed:
            raise TeleStoreError("recorder is closed")
        missing = [p for p in self._dtypes if p not in burst]
        unknown = [p for p in burst if p not in self._dtypes]
        if missing or unknown:
            raise TeleStoreError(
                f"burst node set mismatch: missing {missing!r}, "
                f"unknown {unknown!r}"
            )
        ms = set()
        staged = {}
        for path in self.paths:
            a = np.asarray(burst[path], dtype=self._dtypes[path])
            if a.ndim != 2 or a.shape[0] != self._sensors[path]:
                raise TeleStoreError(
                    f"node {path!r}: burst shape {a.shape} does not match "
                    f"({self._sensors[path]}, m)"
                )
            ms.add(a.shape[1])
            staged[path] = a
        if len(ms) != 1:
            raise TeleStoreError(
                f"burst tick counts differ across nodes: {sorted(ms)}"
            )
        m = ms.pop()
        if m == 0:
            return
        for path, a in staged.items():
            self._buf[path].append(a)
        self._buffered += m
        while self._buffered >= self.partition_ticks:
            self._flush(self.partition_ticks)

    def flush(self) -> None:
        """Flush any buffered tail as one (short) partition."""
        if self._buffered:
            self._flush(self._buffered)

    def close(self) -> None:
        """Flush the tail and finalize the index (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._write_index()
        self._closed = True

    def __enter__(self) -> "TelemetryRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _flush(self, ticks: int) -> None:
        planes = {}
        for path, chunks in self._buf.items():
            whole = chunks[0] if len(chunks) == 1 else np.concatenate(
                chunks, axis=1
            )
            planes[path] = whole[:, :ticks]
            rest = whole[:, ticks:]
            self._buf[path] = [rest] if rest.shape[1] else []
        info = _write_partition(
            self.root, self._schema, self._next_tick, planes
        )
        self._partitions.append(info)
        self._next_tick = info.t1
        self._buffered -= ticks
        self._write_index()

    def _write_index(self) -> None:
        _atomic_write_json(
            self.root / _STORE_JSON,
            {
                "format": STORE_FORMAT,
                "nodes": self._schema,
                "partition_ticks": self.partition_ticks,
                "meta": self.meta,
                "partitions": [p.to_dict() for p in self._partitions],
            },
        )


class TeleStore:
    """Read/retention side of a recorded store directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        index_path = self.root / _STORE_JSON
        if not index_path.exists():
            raise TeleStoreError(f"{self.root} is not a telemetry store")
        index = json.loads(index_path.read_text())
        if index.get("format") != STORE_FORMAT:
            raise TeleStoreError(
                f"{self.root}: unsupported store format "
                f"{index.get('format')!r} (expected {STORE_FORMAT!r})"
            )
        self.node_schema: list[dict] = list(index["nodes"])
        self.partition_ticks = int(index["partition_ticks"])
        self.meta: dict = dict(index.get("meta", {}))
        self.partitions: list[PartitionInfo] = [
            PartitionInfo.from_dict(d) for d in index["partitions"]
        ]
        for a, b in zip(self.partitions, self.partitions[1:]):
            if b.t0 != a.t1:
                raise TeleStoreError(
                    f"{self.root}: partition gap between {a.file} "
                    f"and {b.file}"
                )

    # ------------------------------------------------------------------
    @property
    def paths(self) -> list[str]:
        return [n["path"] for n in self.node_schema]

    def dtype(self, path: str) -> np.dtype:
        for n in self.node_schema:
            if n["path"] == path:
                return np.dtype(n["dtype"])
        raise KeyError(path)

    def sensors(self, path: str) -> int:
        for n in self.node_schema:
            if n["path"] == path:
                return int(n["sensors"])
        raise KeyError(path)

    @property
    def t0(self) -> int:
        return self.partitions[0].t0 if self.partitions else 0

    @property
    def t1(self) -> int:
        return self.partitions[-1].t1 if self.partitions else 0

    @property
    def ticks(self) -> int:
        return self.t1 - self.t0

    @property
    def nbytes(self) -> int:
        return sum(p.bytes for p in self.partitions)

    # ------------------------------------------------------------------
    def _load_planes(
        self, info: PartitionInfo, mmap_mode: str | None
    ) -> dict[str, np.ndarray]:
        path = self.root / info.file
        arrays = load_npz_arrays(path, mmap_mode)
        if "manifest" not in arrays:
            raise TeleStoreError(f"{path}: not a telestore partition")
        manifest = json.loads(bytes(arrays["manifest"]).decode("utf-8"))
        if manifest.get("format") != PARTITION_FORMAT:
            raise TeleStoreError(
                f"{path}: unsupported partition format "
                f"{manifest.get('format')!r}"
            )
        paths = manifest["paths"]
        if paths != self.paths:
            raise TeleStoreError(
                f"{path}: partition node set {paths!r} does not match "
                f"the store index {self.paths!r}"
            )
        return {p: arrays[f"plane_{i}"] for i, p in enumerate(paths)}

    def _clip(self, t0: int | None, t1: int | None) -> tuple[int, int]:
        lo = self.t0 if t0 is None else int(t0)
        hi = self.t1 if t1 is None else int(t1)
        if lo < self.t0 or hi > self.t1 or lo > hi:
            raise TeleStoreError(
                f"window [{lo}, {hi}) outside recorded range "
                f"[{self.t0}, {self.t1}) — pruned away or never recorded"
            )
        return lo, hi

    def scan(
        self,
        t0: int | None = None,
        t1: int | None = None,
        *,
        mmap_mode: str | None = "r",
    ) -> Iterator[tuple[int, dict[str, np.ndarray]]]:
        """Iterate ``(tick0, {path: (sensors, m) plane})`` blocks.

        One block per partition intersecting ``[t0, t1)``, clipped to
        the window.  With the default ``mmap_mode="r"`` planes are
        zero-copy memory-mapped views straight out of the archive —
        peak resident memory is bounded by the pages a consumer actually
        touches per partition, never by store size.  ``mmap_mode=None``
        reads eager copies (identical values, test-enforced).
        """
        lo, hi = self._clip(t0, t1)
        for info in self.partitions:
            if info.t1 <= lo or info.t0 >= hi:
                continue
            a = max(lo, info.t0)
            b = min(hi, info.t1)
            planes = self._load_planes(info, mmap_mode)
            yield a, {
                p: plane[:, a - info.t0 : b - info.t0]
                for p, plane in planes.items()
            }

    def read(
        self, t0: int | None = None, t1: int | None = None
    ) -> dict[str, np.ndarray]:
        """Materialize ``[t0, t1)`` as one matrix per node (eager)."""
        lo, hi = self._clip(t0, t1)
        parts: dict[str, list[np.ndarray]] = {p: [] for p in self.paths}
        for _, planes in self.scan(lo, hi, mmap_mode="r"):
            for p, plane in planes.items():
                parts[p].append(np.ascontiguousarray(plane))
        return {
            p: (
                np.concatenate(chunks, axis=1)
                if chunks
                else np.empty((self.sensors(p), 0), dtype=self.dtype(p))
            )
            for p, chunks in parts.items()
        }

    # ------------------------------------------------------------------
    def stat(self) -> dict:
        """Summary payload for ``repro store stat``."""
        return {
            "format": STORE_FORMAT,
            "root": str(self.root),
            "nodes": len(self.paths),
            "partitions": len(self.partitions),
            "t0": self.t0,
            "t1": self.t1,
            "ticks": self.ticks,
            "bytes": self.nbytes,
            "partition_ticks": self.partition_ticks,
            "meta": dict(self.meta),
        }

    def verify(self) -> int:
        """Recompute every partition's content hash; raise on mismatch.

        Returns the number of partitions checked.  Pairs with PR 7's
        CRC-checked reads: the hash catches bit rot and truncation the
        zip CRC of an individual member would only catch lazily.
        """
        for info in self.partitions:
            path = self.root / info.file
            if not path.exists():
                raise TeleStoreError(f"{path}: partition file missing")
            digest = _sha256_file(path)
            if digest != info.sha256:
                raise TeleStoreError(
                    f"{path}: content hash mismatch (index {info.sha256}, "
                    f"file {digest}) — partition corrupted"
                )
        return len(self.partitions)

    # ------------------------------------------------------------------
    def _write_index(self) -> None:
        _atomic_write_json(
            self.root / _STORE_JSON,
            {
                "format": STORE_FORMAT,
                "nodes": self.node_schema,
                "partition_ticks": self.partition_ticks,
                "meta": self.meta,
                "partitions": [p.to_dict() for p in self.partitions],
            },
        )

    def _reap_orphans(self) -> None:
        """Remove partition files the index no longer references (the
        leftovers of a compaction/prune that crashed after the index
        flip but before the unlink — harmless, but reclaimable)."""
        live = {p.file for p in self.partitions}
        for path in self.root.glob("part-*.npz"):
            if path.name not in live:
                path.unlink()

    def compact(self, target_ticks: int | None = None) -> int:
        """Merge adjacent partitions up to ``target_ticks`` each.

        Crash-safe ordering: merged partition files are written (and
        fsynced) first, the index flips atomically second, and only
        then are the superseded files unlinked — at every intermediate
        point the store reads back either fully-old or fully-new.
        Returns the number of partitions merged away.
        """
        target = (
            self.partition_ticks if target_ticks is None else int(target_ticks)
        )
        if target < 1:
            raise TeleStoreError("target_ticks must be >= 1")
        groups: list[list[PartitionInfo]] = []
        for info in self.partitions:
            if (
                groups
                and sum(p.ticks for p in groups[-1]) + info.ticks <= target
            ):
                groups[-1].append(info)
            else:
                groups.append([info])
        if all(len(g) == 1 for g in groups):
            self._reap_orphans()
            return 0
        new_partitions: list[PartitionInfo] = []
        replaced: list[PartitionInfo] = []
        for group in groups:
            if len(group) == 1:
                new_partitions.append(group[0])
                continue
            planes: dict[str, list[np.ndarray]] = {p: [] for p in self.paths}
            for info in group:
                for p, plane in self._load_planes(info, "r").items():
                    planes[p].append(plane)
            merged = {
                p: np.concatenate(chunks, axis=1)
                for p, chunks in planes.items()
            }
            new_partitions.append(
                _write_partition(
                    self.root, self.node_schema, group[0].t0, merged
                )
            )
            replaced.extend(group)
        old_files = {p.file for p in replaced}
        self.partitions = new_partitions
        self._write_index()
        for name in old_files:
            path = self.root / name
            if path.exists():
                path.unlink()
        return len(replaced)

    # ------------------------------------------------------------------
    def checkpoint_paths(
        self, extra: Sequence[str | Path] = ()
    ) -> list[Path]:
        """Checkpoints retention must respect: every ``.npz`` under
        ``<root>/checkpoints/`` plus any explicitly passed paths."""
        found = sorted((self.root / _CHECKPOINT_DIR).glob("*.npz"))
        return [*found, *(Path(p) for p in extra)]

    def prune(
        self,
        *,
        keep_last: int,
        checkpoints: Sequence[str | Path] = (),
    ) -> int:
        """Drop the oldest partitions, keeping the last ``keep_last``.

        Refuses (typed :class:`RetentionError`) to drop any partition a
        detector checkpoint still references: a checkpoint with
        ``next_lo = s`` resumes at sample ``s``, so every partition with
        ``t1 > s`` must survive.  Checkpoints come from
        :meth:`checkpoint_paths` (the store's ``checkpoints/`` directory
        plus explicit paths).  Returns the number of partitions dropped.
        """
        if keep_last < 0:
            raise TeleStoreError("keep_last must be >= 0")
        drop = (
            self.partitions[:-keep_last]
            if keep_last
            else list(self.partitions)
        )
        if not drop:
            self._reap_orphans()
            return 0
        pins = [
            (path, _checkpoint_next_lo(path))
            for path in self.checkpoint_paths(checkpoints)
        ]
        for info in drop:
            for path, next_lo in pins:
                if info.t1 > next_lo:
                    raise RetentionError(
                        f"refusing to prune {info.file} "
                        f"([{info.t0}, {info.t1})): checkpoint {path} "
                        f"resumes at sample {next_lo} and still needs it",
                        partition=info.file,
                        checkpoint=str(path),
                        next_lo=next_lo,
                    )
        kept = self.partitions[len(drop):]
        self.partitions = kept
        self._write_index()
        for info in drop:
            path = self.root / info.file
            if path.exists():
                path.unlink()
        self._reap_orphans()
        return len(drop)


def _checkpoint_next_lo(path: str | Path) -> int:
    """First un-ingested sample a detector checkpoint resumes at.

    Parses the ``repro-detector-checkpoint/v1`` manifest directly (no
    service import: retention is a storage-layer concern), raising
    :class:`TeleStoreError` for anything that is not a readable
    checkpoint — retention must never *silently* ignore a pin.
    """
    path = Path(path)
    try:
        arrays = load_npz_arrays(path)
    except Exception as exc:
        raise TeleStoreError(
            f"{path}: unreadable checkpoint ({exc})"
        ) from exc
    if "manifest" not in arrays:
        raise TeleStoreError(f"{path}: no checkpoint manifest")
    manifest = json.loads(bytes(arrays["manifest"]).decode("utf-8"))
    if manifest.get("format") != "repro-detector-checkpoint/v1":
        raise TeleStoreError(
            f"{path}: unsupported checkpoint format "
            f"{manifest.get('format')!r}"
        )
    return int(manifest["next_lo"])

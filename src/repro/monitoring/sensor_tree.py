"""Hierarchical sensor naming, DCDB-style.

DCDB organizes sensors in a path hierarchy mirroring the physical system:
``/system/rack/chassis/node/sensor``.  The :class:`SensorTree` here
provides that structure: registering sensors by path, querying subtrees,
and glob-style matching — enough to express "all power sensors of rack 3"
when assembling sensor matrices for out-of-band ODA.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["SensorNode", "SensorTree"]

_SEP = "/"


@dataclass
class SensorNode:
    """One node of the hierarchy; leaves carry sensor metadata."""

    name: str
    children: dict[str, "SensorNode"] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)
    is_sensor: bool = False

    def child(self, name: str, *, create: bool = False) -> "SensorNode":
        if name not in self.children:
            if not create:
                raise KeyError(f"no child {name!r} under {self.name!r}")
            self.children[name] = SensorNode(name=name)
        return self.children[name]


class SensorTree:
    """A registry of sensors addressed by slash-separated paths."""

    def __init__(self):
        self._root = SensorNode(name="")

    @staticmethod
    def _split(path: str) -> list[str]:
        parts = [p for p in path.strip().split(_SEP) if p]
        if not parts:
            raise ValueError(f"invalid sensor path {path!r}")
        return parts

    def add(self, path: str, **metadata) -> SensorNode:
        """Register a sensor at ``path`` (intermediate nodes auto-created).

        Re-adding an existing sensor path raises, so accidental duplicate
        registration of a metric is caught early.
        """
        parts = self._split(path)
        node = self._root
        for part in parts:
            node = node.child(part, create=True)
        if node.is_sensor:
            raise ValueError(f"sensor already registered at {path!r}")
        node.is_sensor = True
        node.metadata.update(metadata)
        return node

    def get(self, path: str) -> SensorNode:
        """Fetch the node at ``path`` (KeyError if absent)."""
        node = self._root
        for part in self._split(path):
            node = node.child(part)
        return node

    def __contains__(self, path: str) -> bool:
        try:
            return self.get(path).is_sensor
        except (KeyError, ValueError):
            return False

    def _walk(self, node: SensorNode, prefix: str) -> Iterator[tuple[str, SensorNode]]:
        for name in sorted(node.children):
            child = node.children[name]
            path = f"{prefix}{_SEP}{name}" if prefix else name
            if child.is_sensor:
                yield path, child
            yield from self._walk(child, path)

    def sensors(self, subtree: str | None = None) -> list[str]:
        """All sensor paths, optionally restricted to a subtree."""
        if subtree is None:
            node, prefix = self._root, ""
        else:
            node = self._root
            for part in self._split(subtree):
                node = node.child(part)
            prefix = _SEP.join(self._split(subtree))
            if node.is_sensor and not node.children:
                return [prefix]
        return [path for path, _ in self._walk(node, prefix)]

    def parent_groups(self, pattern: str | None = None) -> dict[str, list[str]]:
        """Sensor paths grouped by their parent path (their component).

        The parent of ``rack0/node3/power`` is ``rack0/node3`` — the
        monitored component that owns the sensor.  This is the natural
        unit for fleet-scale signature computation: each group becomes
        one node of a :class:`~repro.engine.fleet.FleetSignatureEngine`,
        with the group's sensors as the rows of that node's matrix.

        Parameters
        ----------
        pattern:
            Optional glob restricting the grouped sensors (same
            per-segment semantics as :meth:`glob`).

        Returns
        -------
        dict
            Parent path to sorted list of its sensor paths; top-level
            sensors group under ``""``.
        """
        paths = self.glob(pattern) if pattern is not None else self.sensors()
        groups: dict[str, list[str]] = {}
        for path in paths:
            parent, _, _ = path.rpartition(_SEP)
            groups.setdefault(parent, []).append(path)
        return groups

    def glob(self, pattern: str) -> list[str]:
        """Sensor paths matching a glob pattern (per path segment).

        ``*`` matches within one segment; e.g.
        ``rack0/*/node*/power_node`` selects the node power sensor of
        every chassis of rack 0.
        """
        pat_parts = self._split(pattern)

        def match(node: SensorNode, parts: list[str], prefix: str):
            if not parts:
                if node.is_sensor:
                    yield prefix
                return
            head, *rest = parts
            for name in sorted(node.children):
                if fnmatch.fnmatchcase(name, head):
                    child = node.children[name]
                    path = f"{prefix}{_SEP}{name}" if prefix else name
                    yield from match(child, rest, path)

        return list(match(self._root, pat_parts, ""))

    def __len__(self) -> int:
        return len(self.sensors())

"""Online sliding-window signature stream (in-band ODA operation).

The CS algorithm "is designed for lightweight online operation": a
monitoring agent on a compute node pushes one sample vector per tick, and
every ``ws`` ticks a signature over the last ``wl`` samples is emitted.
:class:`OnlineSignatureStream` implements that loop on top of the
engine's :class:`~repro.engine.streaming.IncrementalSignatureCore`:
each pushed sample is sorted/normalized once and folded into running
prefix sums, so an emit costs ``O(n)`` instead of re-gathering and
re-normalizing the whole ``(n, wl)`` window as the seed implementation
did.  Emitted signatures are bit-identical to the offline
:meth:`~repro.core.pipeline.CorrelationWiseSmoothing.transform_series`
on the same samples.  :meth:`OnlineSignatureStream.push_block` is the
batched entry point for agents that deliver samples in bursts.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.model import CSModel
from repro.core.pipeline import CorrelationWiseSmoothing
from repro.engine.streaming import IncrementalSignatureCore

__all__ = ["OnlineSignatureStream"]


class OnlineSignatureStream:
    """Incremental signature computation over a live sample feed.

    Parameters
    ----------
    cs:
        A fitted :class:`~repro.core.pipeline.CorrelationWiseSmoothing`
        instance (the CS model is typically trained offline and shipped
        to the node).
    wl:
        Aggregation window length, in samples.
    ws:
        Step between emitted signatures, in samples.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CorrelationWiseSmoothing
    >>> from repro.monitoring import OnlineSignatureStream
    >>> rng = np.random.default_rng(0)
    >>> hist = rng.random((4, 128))
    >>> cs = CorrelationWiseSmoothing(blocks=2).fit(hist)
    >>> stream = OnlineSignatureStream(cs, wl=8, ws=4)
    >>> sigs = [s for x in hist.T if (s := stream.push(x)) is not None]
    >>> len(sigs)
    31
    """

    def __init__(self, cs: CorrelationWiseSmoothing, wl: int, ws: int):
        if not cs.is_fitted:
            raise ValueError("the CS estimator must be fitted before streaming")
        if wl < 1 or ws < 1:
            raise ValueError("wl and ws must be positive")
        self.cs = cs
        self.wl = int(wl)
        self.ws = int(ws)
        self._core = IncrementalSignatureCore(
            cs.model, cs.signature_length(), self.wl, self.ws
        )

    @classmethod
    def from_model(
        cls, model: "CSModel", blocks: int, *, wl: int, ws: int
    ) -> "OnlineSignatureStream":
        """Build a stream straight from a trained :class:`CSModel`.

        Fleet-scale serving ships bare models per node (see
        :meth:`repro.engine.fleet.FleetSignatureEngine.stream`) rather
        than full estimator objects; streams built this way have
        ``cs is None`` but behave identically otherwise.
        """
        if wl < 1 or ws < 1:
            raise ValueError("wl and ws must be positive")
        stream = cls.__new__(cls)
        stream.cs = None
        stream.wl = int(wl)
        stream.ws = int(ws)
        stream._core = IncrementalSignatureCore(
            model, int(blocks), stream.wl, stream.ws
        )
        return stream

    @property
    def n_sensors(self) -> int:
        return self._core.n_sensors

    @property
    def emitted(self) -> int:
        """Signatures emitted so far."""
        return self._core.emitted

    @property
    def count(self) -> int:
        """Samples absorbed so far."""
        return self._core.count

    @property
    def state_nbytes(self) -> int:
        """Retained bytes of the incremental core (memory-per-node of
        the staged serving path)."""
        return self._core.state_nbytes

    def push(self, sample: np.ndarray) -> np.ndarray | None:
        """Feed one sample vector; return a signature when one is due.

        A signature is emitted once the first full window is available and
        then every ``ws`` samples, covering the most recent ``wl`` ticks.
        Returns ``None`` on non-emitting ticks.  Cost is ``O(n)`` per call.
        """
        return self._core.push(sample)

    def push_block(self, block: np.ndarray) -> np.ndarray:
        """Feed a burst of samples as columns ``(n, m)``; return due signatures.

        Equivalent to ``m`` :meth:`push` calls (bit-identical output) but
        normalizes, prefix-sums and emits in vectorized form.  Returns a
        complex ``(k, l)`` array of the ``k`` signatures whose windows
        completed inside the block.
        """
        return self._core.push_block(block)

    def state_dict(self) -> dict:
        """Snapshot of the incremental core's retained state (see
        :meth:`repro.engine.streaming.IncrementalSignatureCore.state_dict`);
        restoring it into a stream over the same model continues the
        emission sequence bit-identically."""
        return self._core.state_dict()

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this stream."""
        self._core.load_state(state)

    def window_view(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Current *sorted, normalized* window and its preceding column.

        Rebuilt from at most two contiguous slices of the ring buffer (no
        per-element modulo gather).  Matches the corresponding slice of
        ``sort_rows(S, model)`` in offline operation.
        """
        return self._core.window_view()

    def run(self, samples: Iterable[np.ndarray]) -> list[np.ndarray]:
        """Push an iterable of samples; collect all emitted signatures.

        A 2-D array input (``(t, n)``, samples as rows — the transpose of
        the usual sensor-matrix layout, matching what iterating the
        matrix columns yields) takes the batched :meth:`push_block` path.
        """
        if isinstance(samples, np.ndarray) and samples.ndim == 2:
            return list(self._core.push_block(samples.T))
        out = []
        for sample in samples:
            sig = self.push(sample)
            if sig is not None:
                out.append(sig)
        return out

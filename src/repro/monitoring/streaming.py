"""Online sliding-window signature stream (in-band ODA operation).

The CS algorithm "is designed for lightweight online operation": a
monitoring agent on a compute node pushes one sample vector per tick, and
every ``ws`` ticks a signature over the last ``wl`` samples is emitted.
:class:`OnlineSignatureStream` implements that loop with a preallocated
ring buffer — no per-sample allocation — and keeps the previous sample
around so the first backward difference of each window is exact.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.pipeline import CorrelationWiseSmoothing

__all__ = ["OnlineSignatureStream"]


class OnlineSignatureStream:
    """Incremental signature computation over a live sample feed.

    Parameters
    ----------
    cs:
        A fitted :class:`~repro.core.pipeline.CorrelationWiseSmoothing`
        instance (the CS model is typically trained offline and shipped
        to the node).
    wl:
        Aggregation window length, in samples.
    ws:
        Step between emitted signatures, in samples.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CorrelationWiseSmoothing
    >>> from repro.monitoring import OnlineSignatureStream
    >>> rng = np.random.default_rng(0)
    >>> hist = rng.random((4, 128))
    >>> cs = CorrelationWiseSmoothing(blocks=2).fit(hist)
    >>> stream = OnlineSignatureStream(cs, wl=8, ws=4)
    >>> sigs = [s for x in hist.T if (s := stream.push(x)) is not None]
    >>> len(sigs)
    31
    """

    def __init__(self, cs: CorrelationWiseSmoothing, wl: int, ws: int):
        if not cs.is_fitted:
            raise ValueError("the CS estimator must be fitted before streaming")
        if wl < 1 or ws < 1:
            raise ValueError("wl and ws must be positive")
        self.cs = cs
        self.wl = int(wl)
        self.ws = int(ws)
        n = cs.model.n_sensors
        # Ring buffer sized wl+1 so the sample preceding the current
        # window is always retained for the exact first difference.
        self._buf = np.empty((n, self.wl + 1))
        self._count = 0  # total samples pushed
        self.emitted = 0

    @property
    def n_sensors(self) -> int:
        return self._buf.shape[0]

    def push(self, sample: np.ndarray) -> np.ndarray | None:
        """Feed one sample vector; return a signature when one is due.

        A signature is emitted once the first full window is available and
        then every ``ws`` samples, covering the most recent ``wl`` ticks.
        Returns ``None`` on non-emitting ticks.
        """
        sample = np.asarray(sample, dtype=np.float64)
        if sample.shape != (self.n_sensors,):
            raise ValueError(
                f"sample shape {sample.shape} does not match "
                f"({self.n_sensors},) sensors"
            )
        self._buf[:, self._count % self._buf.shape[1]] = sample
        self._count += 1
        if self._count < self.wl:
            return None
        if (self._count - self.wl) % self.ws != 0:
            return None
        window, prev = self._window_view()
        self.emitted += 1
        return self.cs.transform(window, prev_column=prev)

    def _window_view(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Materialize the last ``wl`` samples (+ preceding one if any)."""
        size = self._buf.shape[1]
        end = self._count % size
        # Columns of the window, oldest first.
        cols = (np.arange(self._count - self.wl, self._count)) % size
        window = self._buf[:, cols]
        prev = None
        if self._count > self.wl:
            prev = self._buf[:, (self._count - self.wl - 1) % size].copy()
        return window, prev

    def run(self, samples: Iterable[np.ndarray]) -> list[np.ndarray]:
        """Push an iterable of samples; collect all emitted signatures."""
        out = []
        for sample in samples:
            sig = self.push(sample)
            if sig is not None:
                out.append(sig)
        return out

"""Time alignment of unaligned sensor series.

Section III-A: "we assume that the sensors in S are time-aligned and have
the same sampling rate: this is not necessarily true for real datasets,
and an interpolation pre-processing step may be required to align the
data."  This module is that step: it resamples arbitrarily timestamped
series onto a common clock with linear or previous-value interpolation
and assembles the aligned sensor matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = ["align_series", "build_sensor_matrix"]


def align_series(
    timestamps: np.ndarray,
    values: np.ndarray,
    clock: np.ndarray,
    *,
    kind: str = "linear",
) -> np.ndarray:
    """Resample one series onto ``clock``.

    Parameters
    ----------
    timestamps, values:
        The raw series (must be non-empty; timestamps strictly increasing).
    clock:
        Target sample times.
    kind:
        ``"linear"`` interpolates between readings; ``"previous"`` holds
        the last reading (appropriate for slowly changing state metrics
        like configuration values).  Outside the observed range the edge
        values are extended.

    Returns
    -------
    numpy.ndarray
        Values at the clock ticks, shape ``(len(clock),)``.
    """
    timestamps = np.asarray(timestamps, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    clock = np.asarray(clock, dtype=np.float64)
    if timestamps.ndim != 1 or timestamps.shape != values.shape:
        raise ValueError("timestamps and values must be equal-length 1-D arrays")
    if timestamps.size == 0:
        raise ValueError("cannot align an empty series")
    if timestamps.size > 1 and not np.all(np.diff(timestamps) > 0):
        raise ValueError("timestamps must be strictly increasing")
    if kind == "linear":
        return np.interp(clock, timestamps, values)
    if kind == "previous":
        idx = np.searchsorted(timestamps, clock, side="right") - 1
        idx = np.clip(idx, 0, timestamps.size - 1)
        return values[idx]
    raise ValueError(f"unknown interpolation kind {kind!r}")


def build_sensor_matrix(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    *,
    interval: float | None = None,
    kind: str = "linear",
) -> tuple[np.ndarray, list[str], np.ndarray]:
    """Align a dict of raw series into one sensor matrix.

    Parameters
    ----------
    series:
        Mapping ``sensor name -> (timestamps, values)``.
    interval:
        Clock tick spacing.  Defaults to the median sampling interval
        observed across all series.
    kind:
        Interpolation kind, forwarded to :func:`align_series`.

    Returns
    -------
    (matrix, names, clock):
        The aligned matrix ``(n_sensors, t)`` with rows in sorted name
        order, the row names, and the common clock.  The clock spans the
        *intersection* of all series' time ranges, so no row is pure
        extrapolation.
    """
    if not series:
        raise ValueError("no series provided")
    names = sorted(series)
    start = -np.inf
    stop = np.inf
    deltas = []
    for name in names:
        ts, vals = series[name]
        ts = np.asarray(ts, dtype=np.float64)
        if ts.size == 0:
            raise ValueError(f"series {name!r} is empty")
        start = max(start, float(ts[0]))
        stop = min(stop, float(ts[-1]))
        if ts.size > 1:
            deltas.append(np.median(np.diff(ts)))
    if stop < start:
        raise ValueError("series time ranges do not overlap")
    if interval is None:
        if not deltas:
            raise ValueError("cannot infer interval from single-sample series")
        interval = float(np.median(deltas))
    if interval <= 0:
        raise ValueError("interval must be positive")
    clock = np.arange(start, stop + interval * 0.5, interval)
    matrix = np.empty((len(names), clock.shape[0]))
    for i, name in enumerate(names):
        ts, vals = series[name]
        matrix[i] = align_series(ts, vals, clock, kind=kind)
    return matrix, names, clock

"""HPC-ODA on-disk format: one CSV per sensor, timestamp/value rows.

Section II-A: "each sensor's time-series data is stored in a separate CSV
file, with each entry being a time-stamp/value pair."  This module reads
and writes that format, and persists/loads whole
:class:`~repro.datasets.generators.SegmentData` objects as a directory of
per-component subdirectories plus a small JSON manifest.

Two segment formats are supported:

* :func:`save_segment` / :func:`load_segment` — the human-readable
  HPC-ODA CSV layout (lossy: ``%.9g`` per value, but inspectable with
  standard tools);
* :func:`save_segment_npz` / :func:`load_segment_npz` — a single binary
  ``.npz`` archive with an embedded JSON manifest.  Bit-exact float64
  round-trip and roughly two orders of magnitude faster, which is what
  the content-addressed artifact cache (``repro.scenarios.cache``)
  layers on.
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
from pathlib import Path

import numpy as np
from numpy.lib import format as npformat

from repro.datasets.generators import ComponentData, SegmentData
from repro.datasets.schema import get_segment_spec

__all__ = [
    "save_sensor_csv",
    "load_sensor_csv",
    "save_segment",
    "load_segment",
    "save_segment_npz",
    "load_segment_npz",
    "load_npz_arrays",
    "atomic_savez",
]

_HEADER = "timestamp,value"


def save_sensor_csv(
    path: str | Path, timestamps: np.ndarray, values: np.ndarray
) -> None:
    """Write one sensor's series as ``timestamp,value`` rows."""
    timestamps = np.asarray(timestamps, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if timestamps.shape != values.shape or timestamps.ndim != 1:
        raise ValueError("timestamps and values must be equal-length 1-D arrays")
    data = np.column_stack([timestamps, values])
    np.savetxt(path, data, delimiter=",", header=_HEADER, comments="", fmt="%.9g")


def load_sensor_csv(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Read a sensor CSV back into (timestamps, values)."""
    data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
    if data.size == 0:
        return np.empty(0), np.empty(0)
    if data.shape[1] != 2:
        raise ValueError(f"{path}: expected 2 columns, found {data.shape[1]}")
    return data[:, 0].copy(), data[:, 1].copy()


def _sanitize(name: str) -> str:
    return name.replace("/", "_")


def save_segment(segment: SegmentData, root: str | Path) -> Path:
    """Persist a segment in HPC-ODA layout.

    Layout::

        root/
          manifest.json
          <component>/
            <sensor>.csv        # timestamp,value rows
            labels.csv          # when classification labels exist
            target.csv          # when a regression target exists
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    interval = segment.spec.sampling_interval_s
    manifest = {
        "format": "hpc-oda-segment/v1",
        "segment": segment.spec.name,
        "seed": segment.seed,
        "label_names": list(segment.label_names),
        "components": [],
    }
    for comp in segment.components:
        comp_dir = root / _sanitize(comp.name)
        comp_dir.mkdir(exist_ok=True)
        ts = np.arange(comp.t) * interval
        for row, sensor in enumerate(comp.sensor_names):
            save_sensor_csv(comp_dir / f"{_sanitize(sensor)}.csv", ts, comp.matrix[row])
        if comp.labels is not None:
            save_sensor_csv(comp_dir / "labels.csv", ts, comp.labels.astype(np.float64))
        if comp.target is not None:
            save_sensor_csv(comp_dir / "target.csv", ts, comp.target)
        manifest["components"].append(
            {
                "name": comp.name,
                "arch": comp.arch,
                "sensors": list(comp.sensor_names),
                "groups": list(comp.sensor_groups),
                "has_labels": comp.labels is not None,
                "has_target": comp.target is not None,
            }
        )
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return root


def load_segment(root: str | Path) -> SegmentData:
    """Load a segment previously written by :func:`save_segment`."""
    root = Path(root)
    manifest = json.loads((root / "manifest.json").read_text())
    if manifest.get("format") != "hpc-oda-segment/v1":
        raise ValueError(f"unsupported segment format in {root}")
    spec = get_segment_spec(manifest["segment"])
    components = []
    for entry in manifest["components"]:
        comp_dir = root / _sanitize(entry["name"])
        rows = []
        for sensor in entry["sensors"]:
            _, values = load_sensor_csv(comp_dir / f"{_sanitize(sensor)}.csv")
            rows.append(values)
        matrix = np.stack(rows)
        labels = None
        if entry["has_labels"]:
            _, lab = load_sensor_csv(comp_dir / "labels.csv")
            labels = lab.astype(np.intp)
        target = None
        if entry["has_target"]:
            _, target = load_sensor_csv(comp_dir / "target.csv")
        components.append(
            ComponentData(
                name=entry["name"],
                matrix=matrix,
                sensor_names=tuple(entry["sensors"]),
                sensor_groups=tuple(entry["groups"]),
                labels=labels,
                target=target,
                arch=entry["arch"],
            )
        )
    return SegmentData(
        spec,
        components,
        label_names=tuple(manifest["label_names"]),
        seed=manifest.get("seed"),
    )


# ----------------------------------------------------------------------
# Binary (.npz) segment format — exact round-trip, cache-grade speed
# ----------------------------------------------------------------------
_NPZ_FORMAT = "hpc-oda-segment-npz/v1"


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry to disk (no-op where unsupported).

    ``os.replace`` makes the rename atomic against concurrent readers,
    but only an fsync of the *parent directory* makes it durable: until
    then a power loss can roll the directory back to the old entry — or,
    worse, to a state where neither name exists.  Platforms that cannot
    open directories (Windows) skip silently; rename durability is a
    best-effort there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_savez(path: Path, **arrays: np.ndarray) -> None:
    """``np.savez`` via temp file + fsync + rename + directory fsync.

    Readers never see a partial archive (shared by the segment format,
    the artifact cache, detector checkpoints and the telemetry store),
    and the write is *durable*: the temp file is fsynced before
    ``os.replace`` (so the renamed entry can never point at unflushed
    data) and the parent directory is fsynced after it (so a crash
    cannot roll back the rename and leave a torn partition behind a
    completed compaction).
    """
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    finally:
        if tmp.exists():  # failed write: don't litter the directory
            tmp.unlink()


def save_segment_npz(segment: SegmentData, path: str | Path) -> Path:
    """Persist a segment as one ``.npz`` archive with a JSON manifest.

    Matrices, labels and targets are stored as raw arrays (bit-exact
    float64 round-trip); names, architectures and sensor metadata live in
    an embedded JSON manifest.  The write is atomic (temp file + rename)
    so a crashed writer never leaves a half-written cache entry behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest = {
        "format": _NPZ_FORMAT,
        "segment": segment.spec.name,
        "seed": segment.seed,
        "label_names": list(segment.label_names),
        "components": [
            {
                "name": comp.name,
                "arch": comp.arch,
                "sensors": list(comp.sensor_names),
                "groups": list(comp.sensor_groups),
                "has_labels": comp.labels is not None,
                "has_target": comp.target is not None,
            }
            for comp in segment.components
        ],
    }
    arrays: dict[str, np.ndarray] = {
        "manifest": np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
    }
    for i, comp in enumerate(segment.components):
        arrays[f"matrix_{i}"] = comp.matrix
        if comp.labels is not None:
            arrays[f"labels_{i}"] = comp.labels
        if comp.target is not None:
            arrays[f"target_{i}"] = comp.target
    atomic_savez(path, **arrays)
    return path


def _mapped_member_array(
    path: Path, f, info: zipfile.ZipInfo, mmap_mode: str
) -> np.ndarray:
    """Memory-map one stored (uncompressed) ``.npy`` zip member.

    ``np.savez`` writes ``ZIP_STORED`` members, so each array's bytes
    sit contiguously in the archive: parse the member's local header to
    find the data start, read the ``.npy`` header there, and map the
    payload in place — a cache hit then costs no bulk read or copy.
    """
    f.seek(info.header_offset)
    local = f.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise ValueError(f"{path}: corrupt local header for {info.filename}")
    name_len, extra_len = struct.unpack("<HH", local[26:30])
    f.seek(info.header_offset + 30 + name_len + extra_len)
    version = npformat.read_magic(f)
    if version == (1, 0):
        shape, fortran, dtype = npformat.read_array_header_1_0(f)
    elif version == (2, 0):
        shape, fortran, dtype = npformat.read_array_header_2_0(f)
    else:
        raise ValueError(f"{path}: unsupported .npy version {version}")
    if dtype.hasobject:
        raise ValueError(f"{path}: object arrays cannot be memory-mapped")
    return np.memmap(
        path,
        mode=mmap_mode,
        dtype=dtype,
        shape=shape,
        order="F" if fortran else "C",
        offset=f.tell(),
    )


def load_npz_arrays(
    path: str | Path, mmap_mode: str | None = None
) -> dict[str, np.ndarray]:
    """Load every array of an (uncompressed) ``.npz`` archive.

    With ``mmap_mode`` (``"r"`` / ``"c"``) the stored members are
    memory-mapped zero-copy straight out of the archive; pages are
    faulted in only when actually touched.  Compressed or zero-size
    members fall back to an eager in-memory read.  ``mmap_mode=None``
    matches ``np.load`` exactly.
    """
    path = Path(path)
    if mmap_mode is None:
        with np.load(path) as data:
            return {name: data[name] for name in data.files}
    if mmap_mode not in ("r", "c"):
        raise ValueError(f"unsupported mmap_mode {mmap_mode!r}")
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf, open(path, "rb") as f:
        for info in zf.infolist():
            name = info.filename
            key = name[:-4] if name.endswith(".npy") else name
            if info.compress_type != zipfile.ZIP_STORED or info.file_size == 0:
                with zf.open(info) as member:
                    arrays[key] = npformat.read_array(
                        member, allow_pickle=False
                    )
                continue
            try:
                arrays[key] = _mapped_member_array(path, f, info, mmap_mode)
            except ValueError:
                with zf.open(info) as member:
                    arrays[key] = npformat.read_array(
                        member, allow_pickle=False
                    )
    return arrays


def load_segment_npz(
    path: str | Path, mmap_mode: str | None = None
) -> SegmentData:
    """Load a segment previously written by :func:`save_segment_npz`.

    ``mmap_mode="r"`` memory-maps the matrices/labels/targets instead of
    copying them into fresh arrays (zero-copy cache hits for the
    artifact cache and ``repro detect`` replay); the arrays are then
    read-only views backed by the archive file.
    """
    path = Path(path)
    data = load_npz_arrays(path, mmap_mode)
    manifest = json.loads(bytes(data["manifest"]).decode("utf-8"))
    if manifest.get("format") != _NPZ_FORMAT:
        raise ValueError(f"unsupported segment format in {path}")
    components = []
    for i, entry in enumerate(manifest["components"]):
        components.append(
            ComponentData(
                name=entry["name"],
                matrix=data[f"matrix_{i}"],
                sensor_names=tuple(entry["sensors"]),
                sensor_groups=tuple(entry["groups"]),
                labels=data[f"labels_{i}"] if entry["has_labels"] else None,
                target=data[f"target_{i}"] if entry["has_target"] else None,
                arch=entry["arch"],
            )
        )
    return SegmentData(
        get_segment_spec(manifest["segment"]),
        components,
        label_names=tuple(manifest["label_names"]),
        seed=manifest.get("seed"),
    )

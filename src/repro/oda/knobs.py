"""System knobs: bounded, quantized control interfaces.

"Data center components offer a wide variety of knobs, such as CPU
frequencies, fan speeds and water temperatures, up to high-level
infrastructure settings."  A :class:`Knob` validates, quantizes and
records every actuation, so controllers can be audited after a run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Knob", "CPUFrequencyKnob", "CoolingSetpointKnob"]


class Knob:
    """A bounded scalar control interface with actuation history.

    Parameters
    ----------
    name:
        Identifier used in loop reports.
    lower, upper:
        Admissible setting range (inclusive).
    initial:
        Starting setting; defaults to ``upper`` (run unconstrained).
    step:
        Optional quantization step: requested settings snap to the
        nearest multiple of ``step`` above ``lower`` (real knobs — P-states,
        valve positions — are discrete).
    """

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        *,
        initial: float | None = None,
        step: float | None = None,
    ):
        if not lower < upper:
            raise ValueError("lower bound must be below upper bound")
        if step is not None and step <= 0:
            raise ValueError("step must be positive")
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.step = step
        self._setting = self.upper if initial is None else self._quantize(initial)
        self.history: list[tuple[int, float]] = []

    def _quantize(self, value: float) -> float:
        value = float(np.clip(value, self.lower, self.upper))
        if self.step is not None:
            value = self.lower + round((value - self.lower) / self.step) * self.step
            value = float(np.clip(value, self.lower, self.upper))
        return value

    @property
    def setting(self) -> float:
        """Current applied setting."""
        return self._setting

    def apply(self, value: float, tick: int = -1) -> float:
        """Clamp/quantize ``value``, apply it, and record the actuation.

        Returns the setting actually applied.  No-op actuations (the
        quantized value equals the current setting) are not recorded.
        """
        new = self._quantize(value)
        if new != self._setting:
            self._setting = new
            self.history.append((int(tick), new))
        return self._setting

    def nudge(self, delta: float, tick: int = -1) -> float:
        """Relative adjustment: ``apply(setting + delta)``."""
        return self.apply(self._setting + delta, tick)

    @property
    def actuation_count(self) -> int:
        return len(self.history)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}({self.name!r}, setting={self._setting}, "
                f"range=[{self.lower}, {self.upper}])")


class CPUFrequencyKnob(Knob):
    """Normalized CPU frequency: 1.0 = nominal, with P-state quantization."""

    def __init__(self, *, lower: float = 0.5, upper: float = 1.0,
                 step: float = 0.05, initial: float | None = None):
        super().__init__("cpu-frequency", lower, upper, step=step, initial=initial)


class CoolingSetpointKnob(Knob):
    """Normalized inlet cooling-water temperature setpoint."""

    def __init__(self, *, lower: float = 0.3, upper: float = 0.6,
                 step: float = 0.01, initial: float | None = None):
        super().__init__("cooling-inlet-setpoint", lower, upper, step=step,
                         initial=initial if initial is not None else lower)

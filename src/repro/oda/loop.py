"""The assembled in-band ODA control loop.

``plant.step() -> OnlineSignatureStream.push() -> controller.decide() ->
knob.apply()`` — the full Figure 1 cycle, tick by tick, with a structured
report of what happened for post-hoc analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.monitoring.streaming import OnlineSignatureStream
from repro.oda.controllers import Controller
from repro.oda.plant import SimulatedNodePlant

__all__ = ["LoopRecord", "LoopReport", "ODAControlLoop"]


@dataclass(frozen=True)
class LoopRecord:
    """One emitted signature and the controller's reaction to it."""

    tick: int
    signature: np.ndarray
    applied_setting: float | None
    true_power: float


@dataclass
class LoopReport:
    """Outcome of a control-loop run."""

    records: list[LoopRecord] = field(default_factory=list)
    power_trace: list[float] = field(default_factory=list)
    setting_trace: list[float] = field(default_factory=list)

    @property
    def n_signatures(self) -> int:
        return len(self.records)

    @property
    def n_actuations(self) -> int:
        return sum(1 for r in self.records if r.applied_setting is not None)

    def power_overshoot(self, cap: float) -> float:
        """Mean excess of the true power above ``cap`` (0 if never above)."""
        trace = np.asarray(self.power_trace)
        if trace.size == 0:
            return 0.0
        excess = np.clip(trace - cap, 0.0, None)
        return float(excess.mean())

    def time_above(self, cap: float) -> float:
        """Fraction of ticks with true power above ``cap``."""
        trace = np.asarray(self.power_trace)
        if trace.size == 0:
            return 0.0
        return float((trace > cap).mean())


class ODAControlLoop:
    """Tick-driven composition of plant, signature stream and controller.

    Parameters
    ----------
    plant:
        The simulated node (owns the knob the controller actuates).
    stream:
        A fitted :class:`~repro.monitoring.streaming.OnlineSignatureStream`
        whose CS model was trained on historical plant data.
    controller:
        The decision logic; ``None`` runs monitoring-only (baseline).
    """

    def __init__(
        self,
        plant: SimulatedNodePlant,
        stream: OnlineSignatureStream,
        controller: Controller | None = None,
    ):
        if stream.n_sensors != plant.n_sensors:
            raise ValueError(
                f"stream expects {stream.n_sensors} sensors, plant has "
                f"{plant.n_sensors}"
            )
        self.plant = plant
        self.stream = stream
        self.controller = controller

    def prefill(self, history: np.ndarray) -> int:
        """Warm the stream's window state with historical samples.

        Feeds a ``(n, t)`` matrix of past samples through the stream's
        batched :meth:`~repro.monitoring.streaming.OnlineSignatureStream.
        push_block` entry point before control starts, so the first
        in-loop decision happens after ``ws`` ticks instead of a full
        ``wl``-sample warm-up.  Signatures emitted during prefill are
        discarded (no plant state existed for them to act on).

        Returns the number of discarded warm-up signatures.
        """
        history = np.asarray(history, dtype=np.float64)
        if history.ndim != 2 or history.shape[0] != self.stream.n_sensors:
            raise ValueError(
                f"history shape {history.shape} does not match "
                f"({self.stream.n_sensors}, t) sensors"
            )
        return int(self.stream.push_block(history).shape[0])

    def run(self, ticks: int) -> LoopReport:
        """Run the loop for up to ``ticks`` plant ticks."""
        report = LoopReport()
        for _ in range(ticks):
            try:
                sample = self.plant.step()
            except StopIteration:
                break
            report.power_trace.append(self.plant.true_power())
            report.setting_trace.append(self.plant.knob.setting)
            signature = self.stream.push(sample)
            if signature is None:
                continue
            applied = None
            if self.controller is not None:
                applied = self.controller.decide(signature, self.plant.tick)
            report.records.append(
                LoopRecord(
                    tick=self.plant.tick,
                    signature=signature,
                    applied_setting=applied,
                    true_power=self.plant.true_power(),
                )
            )
        return report

"""Closed-loop telemetry plant: sensor readings that respond to knobs.

The in-band ODA experiments need a plant whose behaviour *depends on* the
applied settings — otherwise a control loop cannot be exercised.
:class:`SimulatedNodePlant` advances one tick at a time: a workload
schedule drives the latent channels (as in the dataset generators), the
CPU-frequency knob scales the frequency channel, and node power responds
to ``compute x frequency`` — so capping the frequency genuinely lowers
the power the monitoring sensors report.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.sensors import SensorBank, node_sensor_bank
from repro.datasets.workloads import APPLICATIONS, CHANNELS, build_schedule
from repro.oda.knobs import CPUFrequencyKnob

__all__ = ["SimulatedNodePlant"]


class SimulatedNodePlant:
    """One compute node whose telemetry reacts to a frequency knob.

    Parameters
    ----------
    n_sensors:
        Sensors in the node's bank.
    total_t:
        Length of the pre-generated workload schedule, in ticks; the
        plant raises ``StopIteration`` beyond it.
    seed:
        Reproducibility seed.
    knob:
        The frequency knob actuated by the controller; defaults to a
        fresh :class:`~repro.oda.knobs.CPUFrequencyKnob`.

    Notes
    -----
    Power responds to the knob with first-order dynamics (RAPL-style):
    ``power ~ base + c * compute * freq^2`` smoothed over a few ticks, so
    a controller sees the effect of its actions with realistic delay.
    """

    def __init__(
        self,
        *,
        n_sensors: int = 32,
        total_t: int = 4000,
        seed: int | None = 0,
        knob: CPUFrequencyKnob | None = None,
    ):
        from repro.datasets.sensors import NODE_TEMPLATES

        if n_sensors < len(NODE_TEMPLATES):
            raise ValueError(
                f"plant needs at least {len(NODE_TEMPLATES)} sensors so the "
                "power_node sensor exists; got n_sensors="
                f"{n_sensors}"
            )
        self.rng = np.random.default_rng(seed)
        self.knob = knob if knob is not None else CPUFrequencyKnob()
        self.bank: SensorBank = node_sensor_bank(
            n_sensors, self.rng, arch="skylake", n_cores=4
        )
        self._power_row = list(self.bank.names).index("power_node")
        schedule = build_schedule(
            total_t, self.rng, min_run=300, max_run=600, include_idle=True
        )
        # Pre-generate the *demand-side* latents; the knob is applied at
        # step time so mid-run actuation takes effect immediately.
        pieces: dict[str, list[np.ndarray]] = {ch: [] for ch in CHANNELS}
        for app, config, length in schedule:
            model = APPLICATIONS.get(app)
            if model is None:
                from repro.datasets.workloads import IDLE

                model = IDLE
            latent = model.latent(length, config, self.rng)
            for ch in CHANNELS:
                pieces[ch].append(latent[ch])
        self._latent = {ch: np.concatenate(parts) for ch, parts in pieces.items()}
        self.total_t = total_t
        self.tick = 0
        self._power_state = 0.3  # first-order power response state

    @property
    def n_sensors(self) -> int:
        return len(self.bank)

    @property
    def sensor_names(self) -> tuple[str, ...]:
        return self.bank.names

    def true_power(self) -> float:
        """The plant's internal (noise-free) power at the current state."""
        return self._power_state

    def step(self) -> np.ndarray:
        """Advance one tick and return the sample vector (n_sensors,).

        Raises ``StopIteration`` when the schedule is exhausted.
        """
        if self.tick >= self.total_t:
            raise StopIteration("plant schedule exhausted")
        i = self.tick
        freq_setting = self.knob.setting
        latent_now = {
            ch: np.array([self._latent[ch][i]]) for ch in CHANNELS
        }
        # The knob caps the achievable frequency; the workload's own
        # frequency behaviour still shows below the cap.
        latent_now["freq"] = np.minimum(latent_now["freq"], freq_setting)
        # Power: first-order response to compute * freq^2 (dynamic power).
        compute = float(latent_now["compute"][0])
        membw = float(latent_now["membw"][0])
        f = float(latent_now["freq"][0])
        target_power = 0.25 + 0.55 * compute * f * f + 0.2 * membw
        self._power_state += 0.4 * (target_power - self._power_state)
        sample = self.bank.render(latent_now, self.rng)[:, 0]
        # Override the rendered power with the knob-aware closed-loop one.
        sample[self._power_row] = self._power_state + self.rng.normal(0.0, 0.01)
        self.tick += 1
        return sample

    def run_open_loop(self, ticks: int) -> np.ndarray:
        """Collect ``ticks`` samples without any controller (history data)."""
        rows = [self.step() for _ in range(min(ticks, self.total_t - self.tick))]
        return np.stack(rows, axis=1)

"""Signature-driven ODA controllers.

Controllers consume one CS signature at a time (the "model" box of the
paper's Figure 1) and derive "actionable knowledge, usually in the form
of a new system setting".  Two concrete controllers cover the paper's two
task families:

* :class:`PowerCapController` — regression: predicts near-future node
  power from the signature and steps the CPU-frequency knob down/up to
  keep the prediction under a cap (the use case of Ozer et al. the paper
  cites for the Power segment);
* :class:`FaultResponseController` — classification: flags windows whose
  predicted fault class is not healthy, driving management decisions.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.pipeline import signature_features
from repro.oda.knobs import Knob

__all__ = ["Controller", "PowerCapController", "FaultResponseController"]


class Controller(abc.ABC):
    """Base class: map a signature to an (optional) knob actuation."""

    @abc.abstractmethod
    def decide(self, signature: np.ndarray, tick: int) -> float | None:
        """Inspect one complex signature; return the applied setting or
        ``None`` when no actuation was made."""


class PowerCapController(Controller):
    """Keep predicted node power under a cap by stepping CPU frequency.

    Parameters
    ----------
    model:
        A fitted regressor with ``predict`` (e.g.
        :class:`~repro.ml.forest.RandomForestRegressor`) trained on CS
        signature features -> future mean power.
    knob:
        The frequency knob to actuate.
    power_cap:
        The cap on predicted power.
    step_down, step_up:
        Frequency deltas applied when above / safely below the cap.
    headroom:
        Fraction of the cap under which frequency may be raised again
        (hysteresis band, preventing actuation thrash).
    """

    def __init__(
        self,
        model,
        knob: Knob,
        *,
        power_cap: float,
        step_down: float = 0.05,
        step_up: float = 0.05,
        headroom: float = 0.9,
    ):
        if power_cap <= 0:
            raise ValueError("power_cap must be positive")
        if not 0.0 < headroom < 1.0:
            raise ValueError("headroom must be in (0, 1)")
        self.model = model
        self.knob = knob
        self.power_cap = float(power_cap)
        self.step_down = float(step_down)
        self.step_up = float(step_up)
        self.headroom = float(headroom)
        self.predictions: list[float] = []

    def decide(self, signature: np.ndarray, tick: int) -> float | None:
        features = signature_features(np.asarray(signature))[None, :]
        predicted = float(self.model.predict(features)[0])
        self.predictions.append(predicted)
        if predicted > self.power_cap:
            return self.knob.nudge(-self.step_down, tick)
        if predicted < self.power_cap * self.headroom and (
            self.knob.setting < self.knob.upper
        ):
            return self.knob.nudge(self.step_up, tick)
        return None


class FaultResponseController(Controller):
    """Raise alerts (and optionally actuate) on predicted fault classes.

    Parameters
    ----------
    model:
        A fitted classifier with ``predict`` over signature features.
    healthy_label:
        The class value meaning "no fault".
    knob:
        Optional knob driven to its lower bound while a fault persists
        (e.g. quarantining a node by capping its frequency).
    min_consecutive:
        Consecutive faulty windows required before reacting — a debounce
        against one-off misclassifications.
    """

    def __init__(
        self,
        model,
        *,
        healthy_label=0,
        knob: Knob | None = None,
        min_consecutive: int = 2,
    ):
        if min_consecutive < 1:
            raise ValueError("min_consecutive must be >= 1")
        self.model = model
        self.healthy_label = healthy_label
        self.knob = knob
        self.min_consecutive = int(min_consecutive)
        self._streak = 0
        self.alerts: list[tuple[int, object]] = []

    def decide(self, signature: np.ndarray, tick: int) -> float | None:
        features = signature_features(np.asarray(signature))[None, :]
        predicted = self.model.predict(features)[0]
        if predicted == self.healthy_label:
            self._streak = 0
            if self.knob is not None and self.knob.setting < self.knob.upper:
                return self.knob.apply(self.knob.upper, tick)
            return None
        self._streak += 1
        if self._streak >= self.min_consecutive:
            self.alerts.append((tick, predicted))
            if self.knob is not None:
                return self.knob.apply(self.knob.lower, tick)
        return None

"""ODA control-loop substrate (the paper's Figure 1 flow).

The paper situates CS inside Operational Data Analytics loops:
"monitoring collects data from sensors of interest, which is then
processed by ODA to produce a compact representation, i.e., a signature.
This is then fed to a model that is able to derive actionable knowledge,
usually in the form of a new system setting.  The latter is finally
applied via a system knob."  Deploying such a loop is also item two of
the paper's future-work list.

This subpackage provides that loop end to end, against a simulated plant:

* :mod:`~repro.oda.knobs` — system knobs (CPU frequency, cooling inlet
  setpoint) with bounds, quantization and actuation history;
* :mod:`~repro.oda.plant` — a closed-loop telemetry plant whose sensor
  readings respond to the knob settings;
* :mod:`~repro.oda.controllers` — signature-driven controllers (power
  capping via a regression model, fault response via a classifier);
* :mod:`~repro.oda.loop` — :class:`~repro.oda.loop.ODAControlLoop`, tying
  plant → :class:`~repro.monitoring.streaming.OnlineSignatureStream` →
  controller → knob.
"""

from repro.oda.controllers import (
    Controller,
    FaultResponseController,
    PowerCapController,
)
from repro.oda.knobs import CoolingSetpointKnob, CPUFrequencyKnob, Knob
from repro.oda.loop import LoopRecord, LoopReport, ODAControlLoop
from repro.oda.plant import SimulatedNodePlant

__all__ = [
    "CPUFrequencyKnob",
    "Controller",
    "CoolingSetpointKnob",
    "FaultResponseController",
    "Knob",
    "LoopRecord",
    "LoopReport",
    "ODAControlLoop",
    "PowerCapController",
    "SimulatedNodePlant",
]

"""repro: reproduction of "Correlation-wise Smoothing: Lightweight
Knowledge Extraction for HPC Monitoring Data" (Netti et al., IPDPS 2021).

Subpackages
-----------
``repro.engine``
    The unified windowed-execution subsystem: window plans, zero-copy
    views, prefix-sum reductions, batched sort/smooth kernels, the
    incremental streaming core, streaming (Welford) training and the
    fleet-scale batched signature service.
``repro.core``
    The CS algorithm itself (training / sorting / smoothing stages).
``repro.baselines``
    The Tuncer, Bodik and Lan signature baselines.
``repro.ml``
    Random forests, MLPs, cross-validation and metrics (scikit-learn
    substitute).
``repro.datasets``
    Synthetic HPC-ODA dataset collection (telemetry simulator).
``repro.monitoring``
    Monitoring substrate: sensor trees, CSV storage, time alignment,
    online streaming.
``repro.analysis``
    Jensen-Shannon compression fidelity, heatmap visualization,
    root-cause drill-down.
``repro.experiments``
    Runnable reproductions of every table and figure in the paper.
``repro.scenarios``
    Declarative scenario registry + unified experiment runner with a
    content-addressed artifact cache (``python -m repro list|run``).
"""

from repro.core import CSModel, CorrelationWiseSmoothing, signature_features
from repro.engine.fleet import FleetSignatureEngine
from repro.engine.trainer import IncrementalCSTrainer

__version__ = "1.2.0"

__all__ = [
    "CSModel",
    "CorrelationWiseSmoothing",
    "FleetSignatureEngine",
    "IncrementalCSTrainer",
    "signature_features",
    "__version__",
]

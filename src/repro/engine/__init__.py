"""repro.engine — the unified windowed-execution subsystem.

Every layer of the repository that slides a window over monitoring data
routes through this package:

* :mod:`~repro.engine.windows` — :class:`WindowPlan`, zero-copy
  :func:`windowed_view` and prefix-sum reductions (the primitives);
* :mod:`~repro.engine.batch` — batched sort + smooth kernels with
  leading batch axes (``repro.core.smoothing`` delegates here);
* :mod:`~repro.engine.scan` — vectorized linear-recurrence scans
  (chunked first-order affine form, diagonalized 2x2 oscillator) that
  ``repro.datasets`` generates telemetry through;
* :mod:`~repro.engine.streaming` — :class:`IncrementalSignatureCore`,
  the O(n)-per-emit core behind the online stream;
* :mod:`~repro.engine.hotpath` — :class:`TickArena`, the fused
  zero-allocation fleet tick path (absorb → signature → forest votes in
  preallocated arenas, with exact/float32/quantized signature modes);
* :mod:`~repro.engine.trainer` — :class:`IncrementalCSTrainer`,
  streaming min-max + Welford co-moment training for drift retraining;
* :mod:`~repro.engine.fleet` — :class:`FleetSignatureEngine`, per-node
  models keyed by sensor-tree paths with batched fleet-wide transforms.

Layering: ``windows`` and ``batch`` sit *below* ``repro.core`` (core
imports them); ``streaming``/``trainer``/``fleet`` sit beside core and
import only its leaf modules (``model``, ``training``), never the
pipeline — which keeps the import graph acyclic.
"""

from repro.engine.batch import (
    normalize_rows_batch,
    smooth_windows_batch,
    sort_rows_batch,
)
from repro.engine.fleet import FleetSignatureEngine
from repro.engine.hotpath import SIGNATURE_MODES, TickArena
from repro.engine.scan import (
    damped_oscillation_scan,
    ema_scan,
    first_order_affine_scan,
)
from repro.engine.streaming import IncrementalSignatureCore
from repro.engine.trainer import IncrementalCSTrainer
from repro.engine.windows import (
    WindowPlan,
    partition_bounds,
    prefix_sums,
    segment_means,
    segment_sums,
    window_means,
    window_sums,
    windowed_view,
)

__all__ = [
    "FleetSignatureEngine",
    "IncrementalCSTrainer",
    "IncrementalSignatureCore",
    "SIGNATURE_MODES",
    "TickArena",
    "WindowPlan",
    "damped_oscillation_scan",
    "ema_scan",
    "first_order_affine_scan",
    "normalize_rows_batch",
    "partition_bounds",
    "prefix_sums",
    "segment_means",
    "segment_sums",
    "smooth_windows_batch",
    "sort_rows_batch",
    "window_means",
    "window_sums",
    "windowed_view",
]

"""Window plans and prefix-sum reductions — the engine's lowest layer.

Before this subsystem existed the repository computed sliding windows
four different ways (a per-window Python loop in the signature-method
base class, a private strided-view helper, a bespoke cumulative-sum path
in the smoothing stage, and a ring-buffer re-gather in the online
stream).  This module is the single source of truth they all route
through now:

* :class:`WindowPlan` — the schedule of a ``(wl, ws)`` sliding window
  over a time axis: window count, start/last indices, backward-difference
  reference indices and the streaming emit rule.
* :func:`windowed_view` — zero-copy strided view of all complete
  windows, for methods that genuinely need the raw samples of every
  window (percentile baselines and the like).
* :func:`prefix_sums` / :func:`window_sums` / :func:`window_means` —
  O(t) prefix-sum window reductions that never materialize windows.
* :func:`segment_means` — mean over arbitrary ``[start, end)`` ranges of
  the last axis via one prefix sum; this single primitive implements the
  CS block reduction, Lan's mean filter and SAX's piecewise aggregation.
* :func:`partition_bounds` — the near-equal partition of ``n`` items
  into ``l`` contiguous (possibly overlapping) segments used both for
  CS blocks over sensors and for time-axis sub-sampling.

Everything here is pure NumPy with no intra-package dependencies, so any
layer (core, baselines, monitoring, experiments) can import it without
cycles.  All functions accept arbitrary leading batch axes: the time (or
segment) axis is always the last one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "WindowPlan",
    "partition_bounds",
    "prefix_sums",
    "segment_means",
    "segment_sums",
    "window_means",
    "window_sums",
    "windowed_view",
]


@dataclass(frozen=True)
class WindowPlan:
    """Schedule of a sliding window of length ``wl`` and step ``ws``.

    Parameters
    ----------
    t:
        Length of the time axis (number of samples seen so far, for
        streaming use).
    wl:
        Aggregation window length in samples.
    ws:
        Step between successive windows in samples.
    """

    t: int
    wl: int
    ws: int

    def __post_init__(self) -> None:
        if self.wl < 1 or self.ws < 1:
            raise ValueError("wl and ws must be positive")
        if self.t < 0:
            raise ValueError("t must be non-negative")

    @property
    def num(self) -> int:
        """Number of complete windows."""
        if self.t < self.wl:
            return 0
        return (self.t - self.wl) // self.ws + 1

    @property
    def starts(self) -> np.ndarray:
        """Start index of every complete window: ``0, ws, 2*ws, ...``."""
        return np.arange(self.num, dtype=np.intp) * self.ws

    @property
    def lasts(self) -> np.ndarray:
        """Index of the final sample of every complete window."""
        return self.starts + self.wl - 1

    def first_refs(self, exact: bool = True) -> np.ndarray:
        """Reference index for each window's first backward difference.

        With ``exact`` (online operation, matching Equation 3 of the
        paper) a window starting at ``s > 0`` references sample ``s - 1``;
        the very first window references its own first sample, making its
        first difference zero.  Without ``exact`` every window references
        its own first sample.
        """
        starts = self.starts
        if not exact:
            return starts
        return np.where(starts > 0, starts - 1, starts)

    def emits_at(self, count: int) -> bool:
        """Whether a stream that has absorbed ``count`` samples emits now.

        This is the single emit rule shared by the offline plan and the
        online stream: a signature is due once the first full window is
        available and then every ``ws`` samples.
        """
        return count >= self.wl and (count - self.wl) % self.ws == 0


def partition_bounds(n: int, l: int) -> tuple[np.ndarray, np.ndarray]:
    """Partition ``n`` contiguous items into ``l`` near-equal segments.

    Segment ``j`` covers ``[starts[j], ends[j])`` with
    ``starts[j] = floor(j * n / l)`` and ``ends[j] = ceil((j+1) * n / l)``
    — the paper's Equation 2 blocking scheme in 0-indexed half-open form.
    When ``n % l != 0`` the widened segments are spread uniformly and
    neighbouring segments may overlap by one item.
    """
    if l < 1:
        raise ValueError(f"need at least one block, got l={l}")
    if n < 1:
        raise ValueError(f"need at least one sensor row, got n={n}")
    if l > n:
        raise ValueError(f"cannot form l={l} blocks from n={n} rows")
    idx = np.arange(l, dtype=np.int64)
    starts = (idx * n) // l
    # ceil((j+1) * n / l) without floating point.
    ends = -(-((idx + 1) * n) // l)
    return starts.astype(np.intp), ends.astype(np.intp)


def windowed_view(S: np.ndarray, wl: int, ws: int) -> np.ndarray:
    """Strided view of all complete windows along the last axis.

    Zero-copy: uses :func:`numpy.lib.stride_tricks.sliding_window_view`
    and slices the window axis with step ``ws``.

    Parameters
    ----------
    S:
        Array of shape ``(..., n, t)``; the time axis is last.
    wl, ws:
        Window length and step, in samples.

    Returns
    -------
    numpy.ndarray
        View of shape ``(..., num, n, wl)``; for the common 2-D input
        this is ``(num, n, wl)``.  Empty (``num == 0``) when ``t < wl``.
    """
    S = np.ascontiguousarray(S, dtype=np.float64)
    if S.ndim < 2:
        raise ValueError(f"need at least a (n, t) matrix, got shape {S.shape}")
    plan = WindowPlan(S.shape[-1], wl, ws)
    if plan.num == 0:
        return np.empty(S.shape[:-2] + (0, S.shape[-2], wl))
    view = np.lib.stride_tricks.sliding_window_view(S, wl, axis=-1)
    # view shape: (..., n, t - wl + 1, wl) -> take every ws-th window and
    # move the window index in front of the row axis.
    return np.moveaxis(view[..., ::ws, :], -2, -3)


def prefix_sums(X: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums along the last axis, with a leading zero.

    ``out[..., k]`` is the sum of ``X[..., :k]``, so any contiguous range
    sum is one subtraction: ``out[..., e] - out[..., s]``.
    """
    X = np.asarray(X, dtype=np.float64)
    out = np.empty(X.shape[:-1] + (X.shape[-1] + 1,), dtype=np.float64)
    out[..., 0] = 0.0
    np.cumsum(X, axis=-1, out=out[..., 1:])
    return out


def window_sums(X: np.ndarray, plan: WindowPlan) -> np.ndarray:
    """Sum of every planned window along the last axis: ``(..., num)``."""
    csum = prefix_sums(X)
    starts = plan.starts
    return csum[..., starts + plan.wl] - csum[..., starts]


def window_means(X: np.ndarray, plan: WindowPlan) -> np.ndarray:
    """Mean of every planned window along the last axis: ``(..., num)``."""
    return window_sums(X, plan) / plan.wl


def segment_sums(
    X: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Sums of ``X`` over ``[start, end)`` ranges of the last axis."""
    csum = prefix_sums(X)
    return csum[..., ends] - csum[..., starts]


def segment_means(
    X: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Means of ``X`` over ``[start, end)`` ranges of the last axis.

    One prefix sum serves every range even when ranges overlap; this is
    the reduction behind CS blocks, Lan's mean filter and SAX's PAA.
    """
    widths = (np.asarray(ends) - np.asarray(starts)).astype(np.float64)
    return segment_sums(X, starts, ends) / widths

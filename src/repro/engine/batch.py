"""Batched implementations of the CS sort and smooth stages.

These kernels generalize the 2-D sorting/smoothing stages of
``repro.core`` to arbitrary leading batch axes, so a whole fleet of
nodes — each with its own trained model — can be sorted and smoothed in
a handful of NumPy calls instead of a per-node Python loop.  The 2-D
case is bit-identical to the historical single-node implementations
(verified by the engine equivalence tests), which is what lets
``repro.core.smoothing`` delegate here without disturbing any recorded
result.

To stay cycle-free these kernels import only :mod:`repro.engine.windows`
(pure NumPy); higher core layers import *us*.
"""

from __future__ import annotations

import numpy as np

from repro.engine.windows import (
    WindowPlan,
    partition_bounds,
    segment_means,
    window_means,
)

__all__ = [
    "normalize_rows_batch",
    "smooth_windows_batch",
    "sort_rows_batch",
]


def normalize_rows_batch(
    X: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    clip: bool = True,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Min-max normalize each row of a stack of sensor matrices.

    Parameters
    ----------
    X:
        Array of shape ``(..., n, t)``.
    lower, upper:
        Per-row bounds of shape ``(..., n)`` matching the leading axes.
    clip:
        Clip the result into ``[0, 1]`` (what an online deployment needs
        when live values stray outside the training bounds).
    out:
        Optional preallocated float64 output of ``X``'s shape; pass ``X``
        itself for in-place operation on float64 input.

    Rows whose bounds collapse (constant during training) map to the
    neutral value 0.5, exactly as in the single-matrix sorting stage.
    """
    X = np.asarray(X, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if X.ndim < 2:
        raise ValueError(f"need at least a (n, t) matrix, got shape {X.shape}")
    if lower.shape != X.shape[:-1] or upper.shape != X.shape[:-1]:
        raise ValueError(
            f"bounds shape mismatch: data {X.shape}, "
            f"lower {lower.shape}, upper {upper.shape}"
        )
    span = upper - lower
    degenerate = span <= 0.0
    safe_span = np.where(degenerate, 1.0, span)
    if out is None:
        out = np.empty_like(X)
    np.subtract(X, lower[..., None], out=out)
    np.divide(out, safe_span[..., None], out=out)
    if degenerate.any():
        out[degenerate, :] = 0.5
    if clip:
        np.clip(out, 0.0, 1.0, out=out)
    return out


def sort_rows_batch(
    X: np.ndarray,
    permutation: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    clip: bool = True,
) -> np.ndarray:
    """Apply the full sorting stage to a stack of sensor matrices.

    Parameters
    ----------
    X:
        Raw matrices of shape ``(..., n, t)`` in original row order.
    permutation:
        Per-matrix permutation vectors, shape ``(..., n)``.
    lower, upper:
        Per-matrix normalization bounds, shape ``(..., n)``, in
        *original* row order (as stored in each CS model).

    Returns
    -------
    numpy.ndarray
        Sorted, normalized matrices of shape ``(..., n, t)``.
    """
    X = np.asarray(X, dtype=np.float64)
    permutation = np.asarray(permutation, dtype=np.intp)
    # Permute first (a gather), then normalize with permuted bounds — the
    # same order as the 2-D sorting stage, writing the output contiguously.
    gathered = np.take_along_axis(X, permutation[..., None], axis=-2)
    lower_p = np.take_along_axis(
        np.asarray(lower, dtype=np.float64), permutation, axis=-1
    )
    upper_p = np.take_along_axis(
        np.asarray(upper, dtype=np.float64), permutation, axis=-1
    )
    return normalize_rows_batch(gathered, lower_p, upper_p, clip=clip, out=gathered)


def smooth_windows_batch(
    sorted_data: np.ndarray,
    l: int,
    wl: int,
    ws: int,
    *,
    exact_first_derivative: bool = True,
) -> np.ndarray:
    """Signatures for every sliding window of a stack of sorted matrices.

    The batched form of the smoothing stage: prefix sums over the time
    axis give every window's row means without touching the data once per
    window, a telescoped backward difference gives the derivative part,
    and one prefix sum over the row axis reduces both into blocks — all
    with arbitrary leading batch axes.

    Parameters
    ----------
    sorted_data:
        Sorted, normalized matrices of shape ``(..., n, t)``.
    l:
        Blocks per signature, ``1 <= l <= n``.
    wl, ws:
        Aggregation window length and step, in samples.
    exact_first_derivative:
        When true, windows with a preceding sample use it for the first
        backward difference (Equation 3 computes the derivative matrix
        from the full series).

    Returns
    -------
    numpy.ndarray
        Complex array of shape ``(..., num, l)``.
    """
    X = np.asarray(sorted_data, dtype=np.float64)
    if X.ndim < 2:
        raise ValueError(f"sorted data must be at least 2-D, got shape {X.shape}")
    n, t = X.shape[-2], X.shape[-1]
    plan = WindowPlan(t, wl, ws)
    bstarts, bends = partition_bounds(n, l)
    lead = X.shape[:-2]
    if plan.num == 0:
        return np.empty(lead + (0, l), dtype=np.complex128)

    # (..., n, num) -> (..., num, n): one value mean per window row.
    value_row_means = np.moveaxis(window_means(X, plan), -1, -2)

    # Row means of backward differences telescope to (last - ref) / wl.
    last_cols = np.moveaxis(X[..., :, plan.lasts], -1, -2)
    first_refs = np.moveaxis(X[..., :, plan.first_refs(exact_first_derivative)], -1, -2)
    deriv_row_means = (last_cols - first_refs) / wl

    out = np.empty(lead + (plan.num, l), dtype=np.complex128)
    out.real = segment_means(value_row_means, bstarts, bends)
    out.imag = segment_means(deriv_row_means, bstarts, bends)
    return out

"""Incremental CS training: streaming min-max + Welford co-moments.

The offline training stage needs the full historical matrix in memory to
compute the shifted correlation matrix, the greedy ordering and the
normalization bounds.  :class:`IncrementalCSTrainer` maintains the same
statistics from a stream of sample blocks — running minima/maxima plus a
Welford-style co-moment matrix merged with Chan's parallel update — so a
deployed node can retrain its CS model when correlations drift without
ever re-reading history.  Two trainers can also be :meth:`merge`\\ d,
which gives shard-parallel training for free: train one accumulator per
shard, merge, then :meth:`train` once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import CSModel
from repro.core.training import correlation_ordering, global_correlation

__all__ = ["IncrementalCSTrainer"]


class IncrementalCSTrainer:
    """Streaming accumulator producing :class:`~repro.core.model.CSModel`\\ s.

    Parameters
    ----------
    n_sensors:
        Optional row count; inferred from the first update when omitted.
    sensor_names:
        Optional names of the rows, stored in trained models.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.engine.trainer import IncrementalCSTrainer
    >>> rng = np.random.default_rng(0)
    >>> S = rng.random((6, 400))
    >>> tr = IncrementalCSTrainer()
    >>> for k in range(0, 400, 64):
    ...     tr = tr.update(S[:, k:k+64])
    >>> model = tr.train()
    >>> model.n_sensors
    6
    """

    def __init__(
        self,
        n_sensors: int | None = None,
        *,
        sensor_names: Sequence[str] | None = None,
    ):
        self._names = tuple(sensor_names) if sensor_names is not None else None
        self._count = 0
        self._mean: np.ndarray | None = None
        self._m2: np.ndarray | None = None
        self._lower: np.ndarray | None = None
        self._upper: np.ndarray | None = None
        if n_sensors is not None:
            self._allocate(int(n_sensors))

    def _allocate(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one sensor row")
        self._mean = np.zeros(n)
        self._m2 = np.zeros((n, n))
        self._lower = np.full(n, np.inf)
        self._upper = np.full(n, -np.inf)

    # ------------------------------------------------------------------
    @property
    def n_sensors(self) -> int | None:
        return None if self._mean is None else int(self._mean.shape[0])

    @property
    def n_seen(self) -> int:
        """Total samples absorbed so far."""
        return self._count

    # ------------------------------------------------------------------
    def update(self, block: np.ndarray) -> "IncrementalCSTrainer":
        """Absorb a block of samples (columns), shape ``(n, m)`` or ``(n,)``."""
        B = np.asarray(block, dtype=np.float64)
        if B.ndim == 1:
            B = B[:, None]
        if B.ndim != 2:
            raise ValueError(f"block must be 1-D or 2-D, got shape {B.shape}")
        if not np.isfinite(B).all():
            raise ValueError("block contains NaN or infinite values")
        if self._mean is None:
            self._allocate(B.shape[0])
        assert self._mean is not None and self._m2 is not None
        if B.shape[0] != self._mean.shape[0]:
            raise ValueError(
                f"block has {B.shape[0]} rows but trainer tracks "
                f"{self._mean.shape[0]} sensors"
            )
        m = B.shape[1]
        if m == 0:
            return self
        np.minimum(self._lower, B.min(axis=1), out=self._lower)
        np.maximum(self._upper, B.max(axis=1), out=self._upper)
        bmean = B.mean(axis=1)
        centered = B - bmean[:, None]
        bm2 = centered @ centered.T
        if self._count == 0:
            self._mean = bmean
            self._m2 = bm2
        else:
            delta = bmean - self._mean
            total = self._count + m
            self._m2 += bm2 + np.outer(delta, delta) * (self._count * m / total)
            self._mean += delta * (m / total)
        self._count += m
        return self

    def merge(self, other: "IncrementalCSTrainer") -> "IncrementalCSTrainer":
        """Fold another trainer's statistics into this one (sharded training)."""
        if other._count == 0:
            return self
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean.copy()
            self._m2 = other._m2.copy()
            self._lower = other._lower.copy()
            self._upper = other._upper.copy()
            return self
        if other._mean.shape != self._mean.shape:
            raise ValueError("cannot merge trainers with different sensor counts")
        np.minimum(self._lower, other._lower, out=self._lower)
        np.maximum(self._upper, other._upper, out=self._upper)
        delta = other._mean - self._mean
        total = self._count + other._count
        self._m2 += other._m2 + np.outer(delta, delta) * (
            self._count * other._count / total
        )
        self._mean += delta * (other._count / total)
        self._count = total
        return self

    # ------------------------------------------------------------------
    def shifted_correlation(self) -> np.ndarray:
        """Shifted correlation matrix (Equation 1) from the co-moments.

        Follows the same conventions as the offline training stage:
        entries clipped into ``[0, 2]`` and constant rows neutral (1.0)
        with everything including themselves.
        """
        if self._count < 2:
            raise ValueError("need at least two samples to correlate rows")
        sigma = np.sqrt(np.clip(np.diagonal(self._m2), 0.0, None))
        denom = np.outer(sigma, sigma)
        constant = sigma == 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            rho = np.where(
                denom > 0.0, self._m2 / np.where(denom > 0.0, denom, 1.0), 0.0
            )
        np.clip(rho, -1.0, 1.0, out=rho)
        rho += 1.0
        if constant.any():
            rho[constant, :] = 1.0
            rho[:, constant] = 1.0
        return rho

    def train(self) -> CSModel:
        """Build a :class:`CSModel` from the absorbed statistics."""
        rho = self.shifted_correlation()
        p = correlation_ordering(rho, global_correlation(rho))
        return CSModel(
            permutation=p,
            lower=self._lower.copy(),
            upper=self._upper.copy(),
            sensor_names=self._names,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalCSTrainer(n_sensors={self.n_sensors}, "
            f"n_seen={self._count})"
        )

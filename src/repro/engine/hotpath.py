"""Fused single-pass tick hot path: preallocated per-shard arenas.

The staged service tick (``FleetIngest.push_blocks`` →
``signature_features`` → ``predict_with_proba``) allocates at every
stage: each node's burst materializes an extended column buffer, fresh
prefix sums, a complex signature block, a stacked feature matrix and a
new forest frontier per tree level.  Per tick that is dozens of numpy
allocations *per node* — pure overhead once fleets reach hundreds of
nodes and bursts shrink to serving size.

:class:`TickArena` is the opt-in fused backend: every buffer the tick
path touches is preallocated once at construction (sized by the fleet's
geometry and the maximum burst length), and a steady-state tick runs the
whole pass — gather/sort, min-max normalize, running prefix sums,
windowed value/derivative means, block reduction, feature layout and the
lockstep forest walk — through ``out=`` kernels into those arenas.  A
steady-state tick retains **zero** new numpy memory (asserted by a
tracemalloc regression test) and its transient peak is bounded by a few
index temporaries instead of the staged path's per-stage matrices.

Exactness contract: in the default ``exact`` mode every floating-point
operation replays :class:`~repro.engine.streaming.IncrementalSignatureCore`
(same association order, same tie-breaks), the feature layout replays
:func:`~repro.core.pipeline.signature_features` and the classifier
replays ``_ForestStack.accumulate`` (sequential per-tree adds), so
signatures, labels, confidences and therefore alert streams are
**bit-identical** to the staged path.  ``float32`` mode runs the same
pass in single precision (half the state, wider SIMD); ``quantized``
mode additionally bins emitted signatures to uint8 (256 levels over each
component's exact value range) and classifies the dequantized bin
centers — the accuracy cost of both is measured per scenario in
``benchmarks/test_tick_hotpath.py`` and reported in ``EXPERIMENTS.md``.

The forest walk cannot use ``_ForestStack.apply``'s shrinking frontier
(its compaction allocates per level).  Instead leaves are given
*self-loop* children once at construction and every (sample, tree) pair
walks exactly ``max_depth`` levels in lockstep through preallocated
buffers: pairs that reach their leaf early spin in place, and the final
node array equals ``apply``'s bit for bit.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

import numpy as np

from repro.engine.streaming import REANCHOR_INTERVAL
from repro.engine.windows import partition_bounds

__all__ = ["SIGNATURE_MODES", "TickArena"]

#: Supported signature computation modes of the fused backend.
SIGNATURE_MODES = ("exact", "float32", "quantized")

_LEAF = -1

#: Re-anchor interval of the float32 modes: single-precision running
#: sums lose absolute accuracy ~2^29 times faster than float64, so the
#: arena re-anchors every 4096 samples (one subtraction per node every
#: ~4k ticks — free) instead of every 2^22.
_F32_REANCHOR_INTERVAL = 1 << 12


def _emits_between(t0: int, total: int, wl: int, ws: int) -> int:
    """Signatures due while the sample count grows from ``t0`` to
    ``total`` — the closed form of ``WindowPlan.emits_at`` over
    ``count = wl + k*ws`` with ``t0 < count <= total``."""
    k_lo = max(0, -(-(t0 + 1 - wl) // ws))
    k_hi = (total - wl) // ws
    return max(0, k_hi - k_lo + 1)


class _ForestWorkspace:
    """Preallocated lockstep forest evaluation over a fitted stack.

    Leaf nodes get self-loop children (and feature index 0) so the walk
    needs no frontier compaction: every (sample, tree) pair advances
    ``depth`` levels through fixed buffers and lands on the same leaf
    ``_ForestStack.apply`` finds.  Accumulation then replays the
    sequential per-tree adds of ``accumulate`` bit for bit.
    """

    def __init__(self, forest, n_features: int):
        stack = forest._stack
        if stack is None:
            raise ValueError("forest is not fitted")
        self.n_trees = stack.n_trees
        self.base = stack.base
        self.values = stack.values
        self.classes = np.asarray(forest.classes_)
        self.threshold = stack.threshold
        self.n_features = int(n_features)
        leaf = stack.feature == _LEAF
        nodes = np.arange(stack.feature.shape[0], dtype=np.intp)
        self.leaf_mask = leaf
        self.feat_safe = np.where(leaf, 0, stack.feature)
        self.left_loop = np.where(leaf, nodes, stack.left)
        self.right_loop = np.where(leaf, nodes, stack.right)
        # Levels needed so every root-to-leaf walk completes (a pure
        # leaf forest needs zero).
        depth = 0
        frontier = self.base[stack.feature[self.base] != _LEAF]
        while frontier.size:
            depth += 1
            children = np.concatenate(
                [self.left_loop[frontier], self.right_loop[frontier]]
            )
            frontier = children[stack.feature[children] != _LEAF]
        self.depth = depth
        self._capacity = 0

    def resize(self, capacity: int, dtype) -> None:
        """(Re)allocate walk buffers for up to ``capacity`` samples."""
        if capacity <= self._capacity:
            return
        n = capacity * self.n_trees
        self._capacity = capacity
        self._cur = np.empty(n, dtype=np.intp)
        self._nl = np.empty(n, dtype=np.intp)
        self._nr = np.empty(n, dtype=np.intp)
        self._f = np.empty(n, dtype=np.intp)
        self._xv = np.empty(n, dtype=dtype)
        self._thr = np.empty(n, dtype=np.float64)
        self._gl = np.empty(n, dtype=bool)
        self._row_off = np.repeat(
            np.arange(capacity, dtype=np.intp) * self.n_features,
            self.n_trees,
        )
        self._acc = np.empty((capacity, self.values.shape[1]))
        self._scr = np.empty((capacity, self.values.shape[1]))
        self._raw = np.empty(capacity, dtype=np.intp)

    def nbytes(self) -> int:
        if self._capacity == 0:
            return 0
        return sum(
            b.nbytes
            for b in (
                self._cur, self._nl, self._nr, self._f, self._xv,
                self._thr, self._gl, self._row_off, self._acc, self._scr,
                self._raw,
            )
        )

    def classify_into(
        self,
        X: np.ndarray,
        labels: np.ndarray,
        conf: np.ndarray,
    ) -> None:
        """Fill ``labels[:k]``/``conf[:k]`` for the ``k`` rows of ``X``.

        Bit-identical to ``classes_[argmax(p, 1)]`` / ``p.max(1)`` with
        ``p = _ForestStack.accumulate(X) / n_trees``.
        """
        k = X.shape[0]
        if k == 0:
            return
        N = k * self.n_trees
        cur, nl, nr = self._cur, self._nl, self._nr
        c = cur[:N].reshape(k, self.n_trees)
        c[:] = self.base
        f, xv = self._f[:N], self._xv[:N]
        thr, gl = self._thr[:N], self._gl[:N]
        xb = self._row_off[:N]
        x_flat = X.reshape(-1)
        cv = cur[:N]
        act = cur_a = xb_a = None
        for _ in range(self.depth):
            if act is None:
                # Full-width levels: every lane steps in place.  Leaves
                # self-loop, so finished lanes are no-ops — but past the
                # forest's typical depth most lanes ARE finished, and
                # full-width passes pay for all of them.
                self.leaf_mask.take(cv, out=gl)
                n_act = N - np.count_nonzero(gl)
                if n_act == 0:
                    break
                if n_act * 2 > N:
                    self.feat_safe.take(cv, out=f)
                    np.add(f, xb, out=f)
                    x_flat.take(f, out=xv)
                    self.threshold.take(cv, out=thr)
                    np.less_equal(xv, thr, out=gl)
                    self.left_loop.take(cv, out=nl[:N])
                    self.right_loop.take(cv, out=nr[:N])
                    np.copyto(nr[:N], nl[:N], where=gl)
                    cur, nr = nr, cur
                    cv = cur[:N]
                    continue
                # Under half the lanes still walking: switch to a
                # compacted active set — the deep tail of the walk
                # costs per *active* lane, not per lane.  The walk
                # itself is unchanged (same nodes, same comparisons),
                # so the leaves — and everything downstream — are
                # identical.
                act = np.flatnonzero(~gl)
                cur_a = cv[act]
                xb_a = xb[act]
            f_a = self.feat_safe[cur_a]
            np.add(f_a, xb_a, out=f_a)
            gle = x_flat[f_a] <= self.threshold[cur_a]
            step = self.right_loop[cur_a]
            np.copyto(step, self.left_loop[cur_a], where=gle)
            cur_a = step
            done = self.leaf_mask[cur_a]
            if done.any():
                cv[act[done]] = cur_a[done]
                keep = ~done
                act = act[keep]
                cur_a = cur_a[keep]
                xb_a = xb_a[keep]
                if act.size == 0:
                    break
        self._cur, self._nl, self._nr = cur, nl, nr
        leaves = cur[:N].reshape(k, self.n_trees)
        acc, scr = self._acc[:k], self._scr[:k]
        acc[...] = 0.0
        for t in range(self.n_trees):
            self.values.take(leaves[:, t], axis=0, out=scr)
            np.add(acc, scr, out=acc)
        np.divide(acc, self.n_trees, out=acc)
        raw = self._raw[:k]
        np.argmax(acc, axis=1, out=raw)
        self.classes.take(raw, out=labels[:k])
        np.max(acc, axis=1, out=conf[:k])


class _GroupState:
    """Arena of one geometry group: all nodes sharing a sensor count.

    State is stacked column-major ``(c, n, ...)`` — node, sensor row,
    time — the same shape the staged ``_absorb`` works in, so every
    kernel below is the batched twin of one staged line.
    """

    def __init__(self, paths, models, l, wl, ws, max_m, dtype):
        self.paths = list(paths)
        c = len(self.paths)
        n = models[0].n_sensors
        self.c, self.n, self.l = c, n, int(l)
        self.wl, self.ws = int(wl), int(ws)
        self.size = self.wl + 1
        self.max_m = int(max_m)
        self.dtype = dtype
        self.bstarts, self.bends = partition_bounds(n, self.l)
        self.widths = (self.bends - self.bstarts).astype(np.float64)
        if dtype != np.float64:
            self.widths = self.widths.astype(dtype)
        # Per-node model parameters, permuted row order (cf.
        # IncrementalSignatureCore.__init__).
        self.perm = np.empty((c, n), dtype=np.intp)
        self.lower = np.empty((c, n, 1), dtype=dtype)
        span = np.empty((c, n), dtype=np.float64)
        for j, model in enumerate(models):
            perm = model.permutation
            self.perm[j] = perm
            lo = model.lower[perm]
            self.lower[j, :, 0] = lo
            span[j] = model.upper[perm] - lo
        degenerate = span <= 0.0
        self.deg_mask = degenerate[:, :, None]
        self.deg_any = bool(degenerate.any())
        self.span = np.where(degenerate, 1.0, span).astype(dtype)[:, :, None]
        # Retained per-node streaming state.  The ring stores the last
        # ``wl + 1`` normalized columns at position ``t % size`` (the
        # staged core's layout): a tick writes only its new columns and
        # derivative references read single columns — no chronological
        # tail is ever materialized.
        self.ring = np.zeros((c, n, self.size), dtype=dtype)
        self.csum = np.zeros((c, n), dtype=dtype)
        self.counts = np.zeros(c, dtype=np.int64)
        self.anchors = np.zeros(c, dtype=np.int64)
        self.emitted = np.zeros(c, dtype=np.int64)
        #: Snapshot ring: bounded FIFO slots for pending window starts
        #: (at most ceil(wl/ws)+1 live at once; +1 slack).
        self.P = -(-self.wl // self.ws) + 2
        self.pending_buf = np.empty((c, self.P, n), dtype=dtype)
        #: While every node of the group has seen the same samples the
        #: FIFO is shared (one deque of (start, slot) for all c nodes);
        #: the first ragged tick splits it into per-node FIFOs for good.
        self.uniform = True
        self.shared_fifo: deque[tuple[int, int]] = deque()
        self.shared_slot = 0
        self.node_fifos: list[deque[tuple[int, int]]] | None = None
        self.node_slots: list[int] | None = None
        # Tick scratch (content never survives a tick).
        self.kmax = self.max_m // self.ws + 1
        self.refsnap = np.empty((c, self.kmax, n), dtype=dtype)
        self.seq = np.empty((c, n, self.max_m + 1), dtype=dtype)
        self.rows = np.empty((c, self.kmax, n), dtype=dtype)
        #: Second rows buffer for the block kernel: derivative windows
        #: are computed *before* the in-place cumsum destroys the staged
        #: normalized columns, so they need their own landing area.
        self.drows = np.empty((c, self.kmax, n), dtype=dtype)
        self.psum = np.empty((c, self.kmax, n + 1), dtype=dtype)
        self.sig = np.empty((c, self.kmax, self.l), dtype=dtype)
        self.sig2 = np.empty((c, self.kmax, self.l), dtype=dtype)
        self.base_scratch = np.empty((c, n), dtype=dtype)
        self.stage = (
            np.empty((n, self.max_m)) if dtype != np.float64 else None
        )
        #: Block-path staging for the float64 kernel, *time-major*: one
        #: node's gathered burst ``(m, n)`` plus its prefix sums
        #: ``(m+1, n)``.  Store planes are column-major ``(n, ticks)``,
        #: so their transpose is C-contiguous time-major — gathers read
        #: contiguous tick-columns, the cumsum runs down axis 0 with
        #: SIMD across sensors, and the whole burst stays cache-resident
        #: through normalize/derivative/window sweeps instead of five
        #: full-group RAM passes.  ``block_rows`` is the row-major
        #: landing pad for C-ordered (non-store) block sources.
        if dtype == np.float64:
            self.block_stage = np.empty((self.max_m, n))
            self.block_psum = np.empty((self.max_m + 1, n))
            self.block_rows = np.empty((n, self.max_m))
        else:
            self.block_stage = self.block_psum = self.block_rows = None
        # Pre-fault the tick scratches: at partition-sized ``max_m`` the
        # ``seq`` staging area alone spans tens of MB, and first-touch
        # page faults inside the first fused burst cost an order of
        # magnitude more than this one-time streaming fill at build time.
        for scratch in (
            self.pending_buf, self.refsnap, self.seq, self.rows,
            self.drows, self.psum, self.sig, self.sig2,
        ):
            scratch.fill(0)
        for opt in (
            self.stage, self.block_stage, self.block_psum, self.block_rows,
        ):
            if opt is not None:
                opt.fill(0)
        self.shared_view = _SharedFifo(self)
        self.node_views: list[_NodeFifo] | None = None

    # -- pending FIFO views -------------------------------------------
    def degrade(self) -> None:
        """Split the shared FIFO into per-node FIFOs (first ragged tick).

        Entries and slot cursors are copied verbatim, so the transition
        changes no node's pending state.  The group never re-unifies:
        per-node processing stays bit-identical, merely less batched.
        """
        if not self.uniform:
            return
        self.uniform = False
        self.node_fifos = [deque(self.shared_fifo) for _ in range(self.c)]
        self.node_slots = [self.shared_slot] * self.c
        self.node_views = [_NodeFifo(self, i) for i in range(self.c)]
        self.shared_fifo.clear()

    def state_nbytes(self) -> int:
        """Retained (non-scratch) bytes of the whole group."""
        return (
            self.ring.nbytes + self.csum.nbytes + self.pending_buf.nbytes
            + self.perm.nbytes + self.lower.nbytes + self.span.nbytes
            + self.deg_mask.nbytes + self.counts.nbytes
            + self.anchors.nbytes + self.emitted.nbytes
        )

    def scratch_nbytes(self) -> int:
        total = (
            self.refsnap.nbytes + self.seq.nbytes + self.rows.nbytes
            + self.drows.nbytes + self.psum.nbytes + self.sig.nbytes
            + self.sig2.nbytes + self.base_scratch.nbytes
        )
        if self.stage is not None:
            total += self.stage.nbytes
        if self.block_stage is not None:
            total += (
                self.block_stage.nbytes + self.block_psum.nbytes
                + self.block_rows.nbytes
            )
        return total


class _SharedFifo:
    """Pending-snapshot access for a whole uniform group."""

    def __init__(self, group: _GroupState):
        self.g = group

    def push(self, start: int) -> np.ndarray:
        g = self.g
        slot = g.shared_slot
        g.shared_slot = (slot + 1) % g.P
        g.shared_fifo.append((start, slot))
        return g.pending_buf[:, slot, :]

    def pop(self, start: int) -> np.ndarray:
        g = self.g
        s, slot = g.shared_fifo.popleft()
        assert s == start, f"pending start {s} != expected {start}"
        return g.pending_buf[:, slot, :]

    def views(self):
        g = self.g
        return [g.pending_buf[:, slot, :] for _, slot in g.shared_fifo]


class _NodeFifo:
    """Pending-snapshot access for one node of a degraded group."""

    def __init__(self, group: _GroupState, i: int):
        self.g = group
        self.i = i

    def push(self, start: int) -> np.ndarray:
        g, i = self.g, self.i
        slot = g.node_slots[i]
        g.node_slots[i] = (slot + 1) % g.P
        g.node_fifos[i].append((start, slot))
        return g.pending_buf[i : i + 1, slot, :]

    def pop(self, start: int) -> np.ndarray:
        g, i = self.g, self.i
        s, slot = g.node_fifos[i].popleft()
        assert s == start, f"pending start {s} != expected {start}"
        return g.pending_buf[i : i + 1, slot, :]

    def views(self):
        g, i = self.g, self.i
        return [g.pending_buf[i : i + 1, slot, :] for _, slot in g.node_fifos[i]]


class TickArena:
    """Preallocated fused tick path for a trained fleet.

    Parameters
    ----------
    engine:
        The trained :class:`~repro.engine.fleet.FleetSignatureEngine`
        (one CS model per node).  Every node must resolve to the same
        signature length ``l`` — the service classifier requires uniform
        feature lengths anyway.
    forest:
        The fitted shared :class:`~repro.ml.forest.RandomForestClassifier`.
    mode:
        ``"exact"`` (float64, bit-identical to the staged path),
        ``"float32"`` or ``"quantized"`` (float32 compute + uint8-binned
        signatures).
    max_chunk:
        Largest burst length the arenas are sized for; longer bursts are
        split into ``max_chunk`` sub-bursts, which is output-identical
        (``push_block`` composes exactly).  Scratch memory scales with
        it: serving loops keep the default, the store replayer passes
        its partition/block size so whole recorded partitions absorb in
        one fused pass (sub-bursts beyond the ``wl + 1`` ring capacity
        run the seq-staged block kernel — still bit-identical).
    paths:
        Optional subset of the engine's nodes; defaults to all of them.
    """

    def __init__(
        self,
        engine,
        forest,
        *,
        mode: str = "exact",
        max_chunk: int = 256,
        paths=None,
    ):
        if mode not in SIGNATURE_MODES:
            raise ValueError(
                f"unknown signature mode {mode!r}; pick one of "
                f"{SIGNATURE_MODES}"
            )
        if max_chunk < 1:
            raise ValueError("max_chunk must be >= 1")
        self.mode = mode
        self.dtype = np.float64 if mode == "exact" else np.float32
        self.max_chunk = int(max_chunk)
        self.wl, self.ws = int(engine.wl), int(engine.ws)
        self._reanchor_every = (
            REANCHOR_INTERVAL if mode == "exact" else _F32_REANCHOR_INTERVAL
        )
        wanted = sorted(paths) if paths is not None else engine.paths
        missing = [p for p in wanted if p not in engine]
        if missing:
            raise KeyError(f"no model fitted for node(s) {missing!r}")
        if not wanted:
            raise ValueError("the arena needs at least one node")
        lengths = {engine.signature_length(p) for p in wanted}
        if len(lengths) != 1:
            raise ValueError(
                "fused backend needs one uniform signature length across "
                f"the fleet, got {sorted(lengths)}"
            )
        self.blocks = lengths.pop()
        self.n_features = 2 * self.blocks
        # Group nodes by sensor count (same l everywhere already).
        by_n: dict[int, list[str]] = {}
        for p in wanted:
            by_n.setdefault(engine.model(p).n_sensors, []).append(p)
        # Scratch is sized for full ``max_chunk`` sub-bursts: up to
        # ``wl + 1`` columns the in-ring kernel runs (every column owns
        # a distinct ring position), longer sub-bursts take the
        # seq-staged block kernel — both bit-identical, so callers pick
        # ``max_chunk`` purely as a burst-capacity/memory trade-off.
        self.groups = [
            _GroupState(
                ps,
                [engine.model(p) for p in ps],
                self.blocks,
                self.wl,
                self.ws,
                self.max_chunk,
                self.dtype,
            )
            for _, ps in sorted(by_n.items())
        ]
        #: path -> (group, index inside the group)
        self._node: dict[str, tuple[_GroupState, int]] = {}
        for g in self.groups:
            for i, p in enumerate(g.paths):
                self._node[p] = (g, i)
        self.paths = list(wanted)
        self._forest_ws = _ForestWorkspace(forest, self.n_features)
        per_tick = self.max_chunk // self.ws + 1
        self._capacity = 0
        self._ensure_capacity(max(1, len(wanted) * per_tick))
        self._assigned: dict[str, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    def _ensure_capacity(self, k: int) -> None:
        """Size the emit-row buffers for ``k`` signatures per tick.

        Only grows (amortized doubling); a steady-state tick never
        enters the allocation branch.
        """
        if k <= self._capacity:
            return
        k = max(k, 2 * self._capacity)
        self._capacity = k
        self._feat = np.empty((k, self.n_features), dtype=self.dtype)
        self._qfeat = (
            np.empty((k, self.n_features), dtype=np.uint8)
            if self.mode == "quantized"
            else None
        )
        self._labels = np.empty(k, dtype=np.intp)
        self._conf = np.empty(k, dtype=np.float64)
        self._forest_ws.resize(k, self.dtype)

    # ------------------------------------------------------------------
    def counts(self, path: str) -> int:
        """Samples absorbed so far for one node."""
        g, i = self._node[path]
        return int(g.counts[i])

    def emitted(self, path: str) -> int:
        """Signatures emitted so far for one node."""
        g, i = self._node[path]
        return int(g.emitted[i])

    def signature(self, row: int) -> np.ndarray:
        """Complex signature of one emit row of the *last* tick.

        Exact mode reconstructs the staged signature bit for bit (the
        feature layout is lossless ``[real | imag]``); float32/quantized
        modes return what the classifier actually saw.
        """
        f = self._feat[row]
        sig = np.empty(self.blocks, dtype=np.complex128)
        sig.real = f[: self.blocks]
        sig.imag = f[self.blocks :]
        return sig

    # ------------------------------------------------------------------
    def node_state(self, path: str) -> dict:
        """Snapshot one node's retained streaming state.

        Same layout as
        :meth:`repro.engine.streaming.IncrementalSignatureCore.state_dict`
        (the arena's per-node ring row *is* the staged core's ring), so
        the service checkpoint layer can move state between backends in
        exact mode without conversion.
        """
        g, i = self._node[path]
        entries = (
            list(g.shared_fifo) if g.uniform else list(g.node_fifos[i])
        )
        k = len(entries)
        starts = np.fromiter(
            (s for s, _ in entries), dtype=np.int64, count=k
        )
        snaps = (
            np.stack([g.pending_buf[i, slot].copy() for _, slot in entries])
            if k
            else np.empty((0, g.n), dtype=g.dtype)
        )
        return {
            "ring": g.ring[i].copy(),
            "csum": g.csum[i].copy(),
            "count": int(g.counts[i]),
            "emitted": int(g.emitted[i]),
            "anchor": int(g.anchors[i]),
            "pending_starts": starts,
            "pending_snaps": snaps,
        }

    def restore_states(self, states: Mapping[str, dict]) -> None:
        """Restore a :meth:`node_state` snapshot for **every** node.

        When all nodes of a geometry group restore to the same sample
        count with identical pending starts the group keeps its shared
        FIFO (the batched uniform path); otherwise it degrades to
        per-node FIFOs — bit-identical either way, merely less batched.
        """
        missing = [p for p in self.paths if p not in states]
        if missing:
            raise KeyError(f"missing restore state for node(s) {missing!r}")
        for g in self.groups:
            per = []
            for i, p in enumerate(g.paths):
                st = states[p]
                ring = np.asarray(st["ring"], dtype=g.dtype)
                csum = np.asarray(st["csum"], dtype=g.dtype)
                starts = np.asarray(st["pending_starts"], dtype=np.int64)
                snaps = np.asarray(st["pending_snaps"], dtype=g.dtype)
                if ring.shape != (g.n, g.size):
                    raise ValueError(
                        f"node {p!r}: ring shape {ring.shape} does not "
                        f"match ({g.n}, {g.size})"
                    )
                if csum.shape != (g.n,):
                    raise ValueError(
                        f"node {p!r}: csum shape {csum.shape} does not "
                        f"match ({g.n},)"
                    )
                if snaps.shape != (starts.shape[0], g.n):
                    raise ValueError(
                        f"node {p!r}: pending snapshot shape "
                        f"{snaps.shape} does not match "
                        f"({starts.shape[0]}, {g.n})"
                    )
                if starts.shape[0] > g.P:
                    raise ValueError(
                        f"node {p!r}: {starts.shape[0]} pending snapshots "
                        f"exceed the arena's {g.P} FIFO slots"
                    )
                g.ring[i] = ring
                g.csum[i] = csum
                g.counts[i] = int(st["count"])
                g.emitted[i] = int(st["emitted"])
                g.anchors[i] = int(st["anchor"])
                per.append((starts, snaps))
            starts0 = per[0][0]
            uniform = g.uniform and all(
                starts.shape == starts0.shape
                and bool((starts == starts0).all())
                for starts, _ in per
            ) and len({int(g.counts[i]) for i in range(g.c)}) == 1
            g.shared_fifo.clear()
            if uniform:
                g.shared_slot = 0
                for k_idx, s in enumerate(starts0):
                    buf = g.shared_view.push(int(s))
                    for i, (_, snaps) in enumerate(per):
                        buf[i] = snaps[k_idx]
            else:
                g.degrade()
                for i, (starts, snaps) in enumerate(per):
                    g.node_fifos[i].clear()
                    g.node_slots[i] = 0
                    for k_idx, s in enumerate(starts):
                        g.node_views[i].push(int(s))[0] = snaps[k_idx]

    # ------------------------------------------------------------------
    def tick(self, data: Mapping[str, np.ndarray]):
        """Absorb one burst per node; classify everything the fleet emits.

        Returns ``[(path, labels, confidences, row0), ...]`` in sorted
        path order, where ``labels``/``confidences`` are views of the
        arena's per-tick buffers (consume before the next tick) and
        ``row0`` keys :meth:`signature` for alert attribution.
        """
        order = sorted(data)
        missing = [p for p in order if p not in self._node]
        if missing:
            raise KeyError(f"unknown node path(s) {missing!r}")
        blocks: dict[str, np.ndarray] = {}
        for p in order:
            B = np.asarray(data[p], dtype=np.float64)
            g, _ = self._node[p]
            if B.ndim != 2 or B.shape[0] != g.n:
                raise ValueError(
                    f"block shape {B.shape} does not match ({g.n}, m) "
                    f"layout for node {p!r}"
                )
            if B.shape[1]:
                blocks[p] = B
        # Plan this tick's emit rows before touching any state.
        total_k = 0
        for p, B in blocks.items():
            g, i = self._node[p]
            total_k += _emits_between(
                int(g.counts[i]), int(g.counts[i]) + B.shape[1],
                self.wl, self.ws,
            )
        self._ensure_capacity(total_k)
        assigned = self._assigned
        assigned.clear()
        feat2 = self._feat
        qfeat2 = self._qfeat
        row = 0
        for g in self.groups:
            present = [
                (i, p) for i, p in enumerate(g.paths) if p in blocks
            ]
            if not present:
                continue
            ms = {blocks[p].shape[1] for _, p in present}
            if g.uniform and len(present) == g.c and len(ms) == 1:
                m = ms.pop()
                t0 = int(g.counts[0])
                k_tick = _emits_between(t0, t0 + m, self.wl, self.ws)
                for i, p in present:
                    assigned[p] = (row + i * k_tick, k_tick)
                hi = row + g.c * k_tick
                feat3 = feat2[row:hi].reshape(g.c, k_tick, self.n_features)
                qfeat3 = (
                    qfeat2[row:hi].reshape(g.c, k_tick, self.n_features)
                    if qfeat2 is not None
                    else None
                )
                fifo = g.shared_view
                off = 0
                for lo in range(0, m, g.max_m):
                    B_sub = [
                        blocks[p][:, lo : lo + g.max_m] for _, p in present
                    ]
                    off += self._feed(
                        g, slice(0, g.c), fifo, B_sub, feat3, qfeat3, off
                    )
                row = hi
            else:
                g.degrade()
                for i, p in present:
                    B = blocks[p]
                    t0 = int(g.counts[i])
                    k_i = _emits_between(
                        t0, t0 + B.shape[1], self.wl, self.ws
                    )
                    assigned[p] = (row, k_i)
                    hi = row + k_i
                    feat3 = feat2[row:hi].reshape(1, k_i, self.n_features)
                    qfeat3 = (
                        qfeat2[row:hi].reshape(1, k_i, self.n_features)
                        if qfeat2 is not None
                        else None
                    )
                    fifo = g.node_views[i]
                    off = 0
                    for lo in range(0, B.shape[1], g.max_m):
                        off += self._feed(
                            g,
                            slice(i, i + 1),
                            fifo,
                            [B[:, lo : lo + g.max_m]],
                            feat3,
                            qfeat3,
                            off,
                        )
                    row = hi
        if row:
            self._forest_ws.classify_into(
                feat2[:row], self._labels, self._conf
            )
        out = []
        for p in order:
            r0, k = assigned.get(p, (0, 0))
            out.append(
                (p, self._labels[r0 : r0 + k], self._conf[r0 : r0 + k], r0)
            )
        return out

    # ------------------------------------------------------------------
    def _feed(self, g, sl, fifo, node_blocks, feat3, qfeat3, off) -> int:
        """Route one sub-burst to the right fused kernel.

        Up to ``wl + 1`` columns every column owns a distinct ring slot,
        so normalization can run in place inside the ring
        (:meth:`_absorb` — the serving-cadence path, untouched by block
        feeds).  Longer sub-bursts stage their normalized columns in the
        ``seq`` scratch instead (:meth:`_absorb_block` — the store
        replayer's whole-partition path).  Both kernels execute the same
        floating-point operations in the same association order, so the
        routing never changes a single output bit.
        """
        if node_blocks[0].shape[1] <= g.size:
            return self._absorb(g, sl, fifo, node_blocks, feat3, qfeat3, off)
        return self._absorb_block(g, sl, fifo, node_blocks, feat3, qfeat3, off)

    def _absorb(self, g, sl, fifo, node_blocks, feat3, qfeat3, off) -> int:
        """One fused sub-burst for the nodes ``sl`` of group ``g``.

        The batched twin of ``IncrementalSignatureCore._absorb``: every
        numbered step mirrors one staged operation in the same
        floating-point association order, into preallocated buffers.
        Returns the number of signatures emitted per node.
        """
        m = node_blocks[0].shape[1]
        t0 = int(g.counts[sl.start])
        total = t0 + m
        size = g.size
        # 0. Emit plan.  Derivative reference columns predating this
        #    sub-burst live at ring positions the new columns are about
        #    to overwrite — snapshot them first (at most kmax single
        #    columns; ``ref >= t0 - wl`` so they are all still live).
        k_lo = max(0, -(-(t0 + 1 - g.wl) // g.ws))
        k_hi = (total - g.wl) // g.ws
        k = max(0, k_hi - k_lo + 1)
        refsnap = g.refsnap[sl]
        for idx in range(k):
            s = (k_lo + idx) * g.ws
            ref = s - 1 if s > 0 else s
            if ref < t0:
                refsnap[:, idx, :] = g.ring[sl, :, ref % size]
        # 1. Gather into sorted row order *straight into the ring* (each
        #    column at its position ``t % size``; sub-bursts never exceed
        #    ``size`` columns, so positions are distinct — at most two
        #    contiguous ring slices around the wrap point) + min-max
        #    normalize in place (the batched _normalize): subtract,
        #    divide, degenerate rows to 0.5, clip.
        p0 = t0 % size
        first = min(size - p0, m)
        r1 = g.ring[sl, :, p0 : p0 + first]
        r2 = g.ring[sl, :, : m - first] if m > first else None
        perm = g.perm
        i = sl.start
        if g.stage is None:
            if r2 is None:
                for j, B in enumerate(node_blocks):
                    B.take(perm[i + j], axis=0, out=r1[j])
            else:
                for j, B in enumerate(node_blocks):
                    B[:, :first].take(perm[i + j], axis=0, out=r1[j])
                    B[:, first:].take(perm[i + j], axis=0, out=r2[j])
        else:
            st = g.stage[:, :m]
            for j, B in enumerate(node_blocks):
                B.take(perm[i + j], axis=0, out=st)
                r1[j] = st[:, :first]
                if r2 is not None:
                    r2[j] = st[:, first:]
        for part in (r1,) if r2 is None else (r1, r2):
            np.subtract(part, g.lower[sl], out=part)
            np.divide(part, g.span[sl], out=part)
            if g.deg_any:
                np.copyto(part, 0.5, where=g.deg_mask[sl])
            np.clip(part, 0.0, 1.0, out=part)
        # 2. Sequential prefix sums continuing the running sum (same
        #    left-to-right association as repeated push()).
        seq = g.seq[sl, :, : m + 1]
        seq[:, :, 0] = g.csum[sl]
        seq[:, :, 1 : first + 1] = r1
        if r2 is not None:
            seq[:, :, first + 1 :] = r2
        seq.cumsum(axis=2, out=seq)
        # 3. Emits due inside this sub-burst.
        if k:
            rows = g.rows[sl, :k, :]
            for idx in range(k):
                cnt = g.wl + (k_lo + idx) * g.ws
                s = cnt - g.wl
                start_cs = (
                    seq[:, :, s - t0] if s >= t0 else fifo.pop(s)
                )
                np.subtract(seq[:, :, cnt - t0], start_cs, out=rows[:, idx, :])
            np.divide(rows, g.wl, out=rows)
            self._reduce(g, sl, rows, k)
            self._store(
                g, feat3[:, off : off + k, : g.l],
                None if qfeat3 is None else qfeat3[:, off : off + k, : g.l],
                k, sl, True,
            )
            for idx in range(k):
                cnt = g.wl + (k_lo + idx) * g.ws
                s = cnt - g.wl
                ref = s - 1 if s > 0 else s
                # ``cnt - 1 >= t0`` always (cnt > t0), so the window's
                # last column is one of this burst's ring writes; the
                # reference column is either also in-burst or was
                # snapshotted in step 0.
                ref_col = (
                    g.ring[sl, :, ref % size]
                    if ref >= t0
                    else refsnap[:, idx, :]
                )
                np.subtract(
                    g.ring[sl, :, (cnt - 1) % size],
                    ref_col,
                    out=rows[:, idx, :],
                )
            np.divide(rows, g.wl, out=rows)
            self._reduce(g, sl, rows, k)
            self._store(
                g, feat3[:, off : off + k, g.l :],
                None if qfeat3 is None else qfeat3[:, off : off + k, g.l :],
                k, sl, False,
            )
            g.emitted[sl] += k
        # 4. Queue snapshots for windows completing after this burst.
        first_start = -(-t0 // g.ws) * g.ws
        for s in range(first_start, total, g.ws):
            if s + g.wl > total:
                fifo.push(s)[...] = seq[:, :, s - t0]
        # 5. Advance retained state: running sum, counts, periodic
        #    re-anchor.  The ring is already current — normalization
        #    wrote this burst's columns in place in step 1.
        g.csum[sl] = seq[:, :, m]
        g.counts[sl] = total
        if total - int(g.anchors[sl.start]) >= self._reanchor_every:
            basebuf = g.base_scratch[sl]
            basebuf[...] = g.csum[sl]
            np.subtract(g.csum[sl], basebuf, out=g.csum[sl])
            for snap in fifo.views():
                np.subtract(snap, basebuf, out=snap)
            g.anchors[sl] = total
        return k

    def _absorb_block(self, g, sl, fifo, node_blocks, feat3, qfeat3, off) -> int:
        """One fused sub-burst of *arbitrary* length (up to ``g.max_m``).

        The block-feed twin of :meth:`_absorb`: normalized columns are
        staged in the ``seq`` scratch instead of the ring, so the burst
        length is not capped by the ring's ``wl + 1`` slots — a whole
        telemetry-store partition absorbs in one pass (one cumsum, one
        window sweep, one forest batch).  Every numbered step reuses the
        exact operation its in-ring twin runs, merely reading the
        normalized columns from the staging area, so the output is
        bit-identical column for column.
        """
        m = node_blocks[0].shape[1]
        t0 = int(g.counts[sl.start])
        total = t0 + m
        size = g.size
        k_lo = max(0, -(-(t0 + 1 - g.wl) // g.ws))
        k_hi = (total - g.wl) // g.ws
        k = max(0, k_hi - k_lo + 1)
        seq = g.seq[sl, :, : m + 1]
        cols = seq[:, :, 1:]  # (c, n, m) staged normalized columns
        perm = g.perm
        i = sl.start
        # Ring-refresh geometry (step 3): the staged tail — the last
        # ``size`` columns (or all of them for shorter bursts), each at
        # its ``t % size`` slot, at most two contiguous runs around the
        # wrap point.  Future bursts then see exactly the state a chain
        # of in-ring sub-bursts would have left.
        rstart = max(t0, total - size)
        kcols = total - rstart
        p0 = rstart % size
        first = min(size - p0, kcols)
        first_start = -(-t0 // g.ws) * g.ws
        if g.stage is None:
            # Steps 1-6 fused into one *time-major* pass per node:
            # gather, normalize, derivative rows, ring refresh, prefix
            # sums, value rows and pending snapshots all touch one
            # node's burst while it is cache-resident, instead of five
            # full-slab RAM sweeps (the group ``seq`` slab is never
            # materialized — only single prefix-sum rows leave the
            # cache).  Store planes are column-major, so their transpose
            # is C-contiguous time-major: gathers read contiguous
            # tick-columns and the cumsum runs down axis 0 with SIMD
            # across sensors.  Every operation is elementwise (or a
            # sensor-independent cumsum) with per-node operands
            # identical to the group-wide form — IEEE addition is
            # commutative, so seeding the first tick with the running
            # sum reproduces the chained cumsum bit for bit.  FIFO pops
            # and pushes are hoisted out of the node loop in window
            # order — exactly the order the group-wide sweep issues
            # them; each node reads its popped rows before writing its
            # pushed rows, so slot reuse is safe.
            if k:
                cnts = g.wl + (k_lo + np.arange(k)) * g.ws
                starts = cnts - g.wl
                end_idx = cnts - t0
                dv_idx = end_idx - 1
                refs = np.where(starts > 0, starts - 1, starts)
                from_st = refs >= t0
                st_ref = (refs - t0)[from_st]
                ring_ref = (refs % size)[~from_st]
                from_seq = starts >= t0
                seq_start = (starts - t0)[from_seq]
                pend = [
                    (idx, fifo.pop(int(starts[idx])))
                    for idx in range(k)
                    if starts[idx] < t0
                ]
            pushes = [
                (s - t0, fifo.push(s))
                for s in range(first_start, total, g.ws)
                if s + g.wl > total
            ]
            tT = g.block_stage[:m]
            sT = g.block_psum[: m + 1]
            for j, B in enumerate(node_blocks):
                a = i + j
                # 1. Gather into sorted row order, time-major.
                if B.flags.f_contiguous:
                    np.take(B.T, perm[a], axis=1, out=tT)
                else:
                    rows = g.block_rows[:, :m]
                    np.take(B, perm[a], axis=0, out=rows)
                    tT[...] = rows.T
                # 2. Min-max normalize (the batched _normalize).
                np.subtract(tT, g.lower[a].T, out=tT)
                np.divide(tT, g.span[a].T, out=tT)
                if g.deg_any:
                    np.copyto(tT, 0.5, where=g.deg_mask[a].T)
                np.clip(tT, 0.0, 1.0, out=tT)
                if k:
                    # 3. Derivative rows need the raw normalized
                    #    columns; references predating the burst still
                    #    sit untouched in the ring (refreshed in 4).
                    refsnap = g.refsnap[a, :k, :]
                    refsnap[from_st] = tT[st_ref]
                    refsnap[~from_st] = g.ring[a].T[ring_ref]
                    drows = g.drows[a, :k, :]
                    np.subtract(tT[dv_idx], refsnap, out=drows)
                    np.divide(drows, g.wl, out=drows)
                # 4. Ring refresh from the staged tail.
                g.ring[a, :, p0 : p0 + first] = tT[
                    rstart - t0 : rstart - t0 + first
                ].T
                if kcols > first:
                    g.ring[a, :, : kcols - first] = tT[
                        rstart - t0 + first :
                    ].T
                # 5. Sequential prefix sums continuing the running sum
                #    (same left-to-right association as repeated
                #    push(): the first tick absorbs the running sum,
                #    then cumsum walks down the time axis).
                np.add(tT[0], g.csum[a], out=tT[0])
                sT[0] = g.csum[a]
                np.cumsum(tT, axis=0, out=sT[1:])
                if k:
                    # 6a. Value rows from the still-warm prefix sums.
                    vstart = refsnap  # drows already materialized
                    vstart[from_seq] = sT[seq_start]
                    for idx, slab in pend:
                        vstart[idx] = slab[j]
                    rows = g.rows[a, :k, :]
                    np.subtract(sT[end_idx], vstart, out=rows)
                    np.divide(rows, g.wl, out=rows)
                # 6b. Pending snapshots + running sum for the next burst.
                for s_rel, slab in pushes:
                    slab[j] = sT[s_rel]
                g.csum[a] = sT[m]
            if k:
                # 7. Reduce + store: value rows, then derivative rows.
                self._reduce(g, sl, g.rows[sl, :k, :], k)
                self._store(
                    g, feat3[:, off : off + k, : g.l],
                    None if qfeat3 is None else qfeat3[:, off : off + k, : g.l],
                    k, sl, True,
                )
                self._reduce(g, sl, g.drows[sl, :k, :], k)
                self._store(
                    g, feat3[:, off : off + k, g.l :],
                    None if qfeat3 is None else qfeat3[:, off : off + k, g.l :],
                    k, sl, False,
                )
                g.emitted[sl] += k
            g.counts[sl] = total
            if total - int(g.anchors[sl.start]) >= self._reanchor_every:
                basebuf = g.base_scratch[sl]
                basebuf[...] = g.csum[sl]
                np.subtract(g.csum[sl], basebuf, out=g.csum[sl])
                for snap in fifo.views():
                    np.subtract(snap, basebuf, out=snap)
                g.anchors[sl] = total
            return k
        else:
            # Quantized/float32 arenas normalize in the group dtype
            # *after* the staged float64 gather lands in ``cols`` —
            # fusing into the float64 stage would change the rounding
            # story — so they keep the group-wide sweeps.
            # 1. Gather + normalize.
            st = g.stage[:, :m]
            for j, B in enumerate(node_blocks):
                B.take(perm[i + j], axis=0, out=st)
                cols[j] = st
            np.subtract(cols, g.lower[sl], out=cols)
            np.divide(cols, g.span[sl], out=cols)
            if g.deg_any:
                np.copyto(cols, 0.5, where=g.deg_mask[sl])
            np.clip(cols, 0.0, 1.0, out=cols)
            # 2. Derivative windows first: they need raw normalized
            #    columns, which the in-place cumsum of step 4
            #    overwrites; references predating this burst still sit
            #    untouched in the ring (only refreshed in step 3).
            if k:
                drows = g.drows[sl, :k, :]
                for idx in range(k):
                    cnt = g.wl + (k_lo + idx) * g.ws
                    s = cnt - g.wl
                    ref = s - 1 if s > 0 else s
                    ref_col = (
                        cols[:, :, ref - t0]
                        if ref >= t0
                        else g.ring[sl, :, ref % size]
                    )
                    np.subtract(
                        cols[:, :, cnt - 1 - t0], ref_col,
                        out=drows[:, idx, :],
                    )
                np.divide(drows, g.wl, out=drows)
            # 3. Ring refresh from the staged tail.
            g.ring[sl, :, p0 : p0 + first] = cols[
                :, :, rstart - t0 : rstart - t0 + first
            ]
            if kcols > first:
                g.ring[sl, :, : kcols - first] = cols[
                    :, :, rstart - t0 + first :
                ]
            # 4. Sequential prefix sums continuing the running sum, in
            #    place over the staged columns (same association as
            #    repeated push(): cumsum left to right).
            seq[:, :, 0] = g.csum[sl]
            seq.cumsum(axis=2, out=seq)
            # 5. Emits due inside this burst: value means from the
            #    prefix sums (pending starts pop from the FIFO in the
            #    same order the in-ring kernel pops them), then the
            #    precomputed derivative rows.
            if k:
                rows = g.rows[sl, :k, :]
                for idx in range(k):
                    cnt = g.wl + (k_lo + idx) * g.ws
                    s = cnt - g.wl
                    start_cs = seq[:, :, s - t0] if s >= t0 else fifo.pop(s)
                    np.subtract(
                        seq[:, :, cnt - t0], start_cs, out=rows[:, idx, :]
                    )
                np.divide(rows, g.wl, out=rows)
                self._reduce(g, sl, rows, k)
                self._store(
                    g, feat3[:, off : off + k, : g.l],
                    None if qfeat3 is None else qfeat3[:, off : off + k, : g.l],
                    k, sl, True,
                )
                self._reduce(g, sl, g.drows[sl, :k, :], k)
                self._store(
                    g, feat3[:, off : off + k, g.l :],
                    None if qfeat3 is None else qfeat3[:, off : off + k, g.l :],
                    k, sl, False,
                )
                g.emitted[sl] += k
        # 6. Queue snapshots for windows completing after this burst.
        for s in range(first_start, total, g.ws):
            if s + g.wl > total:
                fifo.push(s)[...] = seq[:, :, s - t0]
        # 7. Advance retained state (ring already refreshed in step 3).
        g.csum[sl] = seq[:, :, m]
        g.counts[sl] = total
        if total - int(g.anchors[sl.start]) >= self._reanchor_every:
            basebuf = g.base_scratch[sl]
            basebuf[...] = g.csum[sl]
            np.subtract(g.csum[sl], basebuf, out=g.csum[sl])
            for snap in fifo.views():
                np.subtract(snap, basebuf, out=snap)
            g.anchors[sl] = total
        return k

    def _reduce(self, g, sl, rows, k) -> None:
        """Block reduction (the batched ``segment_means``) into ``g.sig``."""
        ps = g.psum[sl, :k, :]
        ps[:, :, 0] = 0.0
        rows.cumsum(axis=2, out=ps[:, :, 1:])
        sig = g.sig[sl, :k, :]
        lo = g.sig2[sl, :k, :]
        # Fancy-index gathers: ``take`` into these non-contiguous
        # (sl, :k) views runs through numpy's buffered fallback.
        sig[...] = ps[:, :, g.bends]
        lo[...] = ps[:, :, g.bstarts]
        np.subtract(sig, lo, out=sig)
        np.divide(sig, g.widths, out=sig)

    def _store(self, g, feat_view, qview, k, sl, is_real: bool) -> None:
        """Write ``g.sig`` into the feature rows, per the arena's mode."""
        sig = g.sig[sl, :k, :]
        if self.mode != "quantized":
            feat_view[...] = sig
            return
        # uint8 binning over each component's exact value range —
        # values in [0, 1], derivatives in [-1/wl, 1/wl].  The binned
        # bytes are the mode's stored signatures; the classifier sees
        # their dequantized bin centers.
        if is_real:
            np.multiply(sig, 255.0, out=sig)
        else:
            np.multiply(sig, float(g.wl), out=sig)
            np.add(sig, 1.0, out=sig)
            np.multiply(sig, 127.5, out=sig)
        np.rint(sig, out=sig)
        np.clip(sig, 0.0, 255.0, out=sig)
        qview[...] = sig
        if is_real:
            np.divide(sig, 255.0, out=sig)
        else:
            np.divide(sig, 127.5, out=sig)
            np.subtract(sig, 1.0, out=sig)
            np.divide(sig, float(g.wl), out=sig)
        feat_view[...] = sig

    # ------------------------------------------------------------------
    def memory_report(self) -> dict:
        """Bytes the arena retains and scratches, per node and total.

        ``per_node_state_bytes`` is the retained streaming state one
        node costs (ring tail, running sum, pending snapshots, model
        rows); ``per_node_total_bytes`` divides *everything* — state,
        tick scratch, feature/classifier workspaces — across the fleet,
        i.e. the honest "how many nodes fit in this container" number.
        """
        n_nodes = len(self.paths)
        state = sum(g.state_nbytes() for g in self.groups)
        scratch = sum(g.scratch_nbytes() for g in self.groups)
        classify = (
            self._feat.nbytes
            + (self._qfeat.nbytes if self._qfeat is not None else 0)
            + self._labels.nbytes
            + self._conf.nbytes
            + self._forest_ws.nbytes()
        )
        total = state + scratch + classify
        return {
            "mode": self.mode,
            "nodes": n_nodes,
            "state_bytes": int(state),
            "scratch_bytes": int(scratch),
            "classifier_bytes": int(classify),
            "total_bytes": int(total),
            "per_node_state_bytes": int(round(state / n_nodes)),
            "per_node_total_bytes": int(round(total / n_nodes)),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TickArena(nodes={len(self.paths)}, mode={self.mode!r}, "
            f"blocks={self.blocks}, wl={self.wl}, ws={self.ws}, "
            f"max_chunk={self.max_chunk})"
        )

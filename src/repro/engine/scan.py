"""Vectorized linear-recurrence scans for telemetry generation.

The synthetic-telemetry generators are built from three sequential
recurrences — exponential moving averages (sensor response lag, thermal
inertia), Ornstein-Uhlenbeck mean reversion (rack load drift) and a
noise-driven damped oscillator (short-term power dynamics).  Evaluated
sample by sample in Python they dominate every cold generation path;
this module evaluates them as *batched affine scans* instead:

* :func:`first_order_affine_scan` — ``x[i] = a * x[i-1] + u[i]`` as a
  numerically-stable chunked cumulative form, vectorized over arbitrary
  leading axes (whole (node, sensor) planes in one call);
* :func:`ema_scan` — the exponential moving average expressed through
  the first-order scan;
* :func:`damped_oscillation_scan` — the 2x2 state recurrence of the
  damped oscillator, diagonalized into two complex first-order scans
  (the 2x2 matrix scan in eigencoordinates).

Numerical contract: results match the sequential recurrences to far
better than ``rtol=1e-10`` (the equivalence tolerance enforced against
``repro.datasets._seed_reference``); they are *not* bit-identical, which
is why :data:`repro.datasets.generators.DATAGEN_VERSION` participates in
artifact-cache keys.

Stability of the chunked form: within one block the scan computes
``a**j * cumsum(u * a**-m)``.  The inverse powers grow as ``|a|**-m``,
so the block length is capped where ``|a|**-(B-1)`` would approach the
float64 range limit; contributions older than one block re-enter through
the carried boundary value, and terms whose true weight has decayed
below the representable range underflow harmlessly to zero.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "first_order_affine_scan",
    "ema_scan",
    "damped_oscillation_scan",
]

#: Decimal-digit budget for the within-block dynamic range ``|a|**-(B-1)``
#: (float64 overflows near 1e308; 250 leaves ~58 digits of headroom for
#: the driving terms themselves).
_RANGE_DIGITS = 250.0


def _block_length(a: complex, t: int) -> int:
    """Largest safe chunk for the scaled-cumsum form of the scan."""
    mag = abs(a)
    if mag >= 1.0:
        # No growth in the inverse powers: one block covers the series.
        return t
    # Strong decay shrinks the safe block; the scan stays correct at any
    # block length (block 1 degenerates to the sequential recurrence).
    return min(t, max(1, int(_RANGE_DIGITS / -np.log10(mag))))


def first_order_affine_scan(a, u, x0):
    """Evaluate ``x[i] = a * x[i-1] + u[i]`` (``i >= 1``) with ``x[0] = x0``.

    Parameters
    ----------
    a:
        Constant recurrence coefficient (real or complex scalar).
        Stable systems (``|a| <= 1``) are the intended use; ``|a| > 1``
        works but inherits the recurrence's own growth.
    u:
        Driving terms, shape ``(..., t)``; the recurrence runs along the
        last axis and is vectorized over all leading axes.  ``u[..., 0]``
        is never read (position 0 is pinned to ``x0``).
    x0:
        Initial value(s), broadcastable to ``u[..., 0]``.

    Returns an array of ``u``'s shape (complex when ``a`` or ``u`` is).
    """
    u = np.asarray(u)
    if u.ndim == 0:
        raise ValueError("u must have at least one (time) axis")
    dtype = np.result_type(u.dtype, np.asarray(a).dtype, np.float64)
    out = np.empty(u.shape, dtype=dtype)
    t = u.shape[-1]
    if t == 0:
        return out
    out[..., 0] = x0
    if t == 1:
        return out
    if a == 0:
        out[..., 1:] = u[..., 1:]
        return out
    block = _block_length(a, t)
    j = np.arange(block)
    powers = np.power(np.asarray(a, dtype=dtype), j)       # a^0 .. a^(B-1)
    inv_powers = np.power(np.asarray(a, dtype=dtype), -j)  # a^0 .. a^-(B-1)
    start = 1
    while start < t:
        stop = min(start + block, t)
        n = stop - start
        # x[start+j] = a^(j+1) * x[start-1] + a^j * cumsum(u * a^-m)[j]
        scaled = np.cumsum(u[..., start:stop] * inv_powers[:n], axis=-1)
        out[..., start:stop] = powers[:n] * scaled + (
            (a * powers[:n]) * out[..., start - 1][..., None]
        )
        start = stop
    return out


def ema_scan(x: np.ndarray, samples: int) -> np.ndarray:
    """Exponential moving average with time constant ``samples``.

    Matches the sequential form ``acc += (x[i] - acc) / samples`` seeded
    with ``acc = x[..., 0]``; runs along the last axis, vectorized over
    leading axes.  ``samples <= 1`` returns a copy (no smoothing).
    """
    x = np.asarray(x, dtype=np.float64)
    if samples <= 1:
        return x.copy()
    alpha = 1.0 / samples
    return first_order_affine_scan(1.0 - alpha, alpha * x, x[..., 0])


def _sequential_oscillation(
    kicks: np.ndarray, stiffness: float, damping: float
) -> np.ndarray:
    """Reference loop, kept as the fallback for defective dynamics."""
    t = kicks.shape[0]
    x = np.zeros(t)
    v = 0.0
    for i in range(1, t):
        v = (1.0 - damping) * v - stiffness * x[i - 1] + kicks[i]
        x[i] = x[i - 1] + v
    return x


def damped_oscillation_scan(
    kicks: np.ndarray, *, stiffness: float, damping: float
) -> np.ndarray:
    """Noise-driven damped oscillator position series.

    Evaluates the 2x2 state recurrence ``s[i] = A @ s[i-1] + kicks[i] * e``
    (state ``s = (x, v)``, ``e = (1, 1)``, ``s[0] = 0``) by diagonalizing
    ``A`` and running one complex first-order scan per eigenvalue; the
    position series is the real part of the recombined eigencoordinates.
    Falls back to the sequential loop when ``A`` is (near-)defective and
    the eigenbasis is too ill-conditioned to trust.
    """
    kicks = np.asarray(kicks, dtype=np.float64)
    t = kicks.shape[0]
    if t <= 1:
        return np.zeros(t)
    A = np.array(
        [
            [1.0 - stiffness, 1.0 - damping],
            [-stiffness, 1.0 - damping],
        ]
    )
    try:
        eigenvalues, P = np.linalg.eig(A)
        if np.linalg.cond(P) > 1e8:
            raise np.linalg.LinAlgError("defective oscillator dynamics")
        weights = np.linalg.solve(P, np.ones(2, dtype=P.dtype))
    except np.linalg.LinAlgError:
        return _sequential_oscillation(kicks, stiffness, damping)
    x = np.zeros(t)
    driven = kicks.astype(complex)
    for m in range(2):
        z = first_order_affine_scan(
            complex(eigenvalues[m]), driven * complex(weights[m]), 0.0j
        )
        x += (complex(P[0, m]) * z).real
    return x

"""Incremental streaming core: O(n) per-emit CS signatures.

The seed implementation of the online stream re-gathered the whole
``(n, wl)`` window from its ring buffer with a fancy-indexed modulo
gather and re-ran the full sort + smooth pipeline on every emit —
``O(n * wl)`` per signature.  :class:`IncrementalSignatureCore` replaces
that with running prefix sums:

* each pushed sample is sorted/normalized once (``O(n)``) and added to a
  running cumulative sum;
* at every window start the cumulative sum is snapshotted (``O(n)``,
  once per ``ws`` ticks);
* an emit is then one vector subtraction (window row sums), one
  telescoped backward difference (from the ring buffer) and one
  prefix-sum block reduction — ``O(n + l)`` total, never touching the
  other ``wl - 1`` columns again.

Because the running sum accumulates samples in exactly the order
``numpy.cumsum`` does, emitted signatures are *bit-identical* to the
offline batched path (:func:`repro.engine.batch.smooth_windows_batch`
with ``exact_first_derivative=True``), which the equivalence tests
assert.  (On unbounded streams the running sum is re-anchored every
``_REANCHOR_INTERVAL`` samples to keep precision bounded; bit parity
with an offline cumsum over the full history holds up to the first
re-anchor, i.e. for any realistically comparable series.)  :meth:`IncrementalSignatureCore.push_block` is the batched
entry point: it normalizes, prefix-sums and emits for a whole block of
samples in vectorized form while preserving that exactness.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.model import CSModel
from repro.engine.windows import WindowPlan, partition_bounds, segment_means

__all__ = ["REANCHOR_INTERVAL", "IncrementalSignatureCore"]

#: Samples between re-anchorings of running cumulative sums, shared by
#: this core and the fused arena backend (`repro.engine.hotpath`) so the
#: two paths re-anchor — and therefore diverge from an offline cumsum —
#: at the exact same tick.
REANCHOR_INTERVAL = 1 << 22


class IncrementalSignatureCore:
    """Incremental CS signature computation over a live sample feed.

    Parameters
    ----------
    model:
        Trained :class:`~repro.core.model.CSModel` (permutation +
        normalization bounds).
    blocks:
        Number of signature blocks ``l``, ``1 <= l <= n``.
    wl:
        Aggregation window length, in samples.
    ws:
        Step between emitted signatures, in samples.
    """

    def __init__(self, model: CSModel, blocks: int, wl: int, ws: int):
        if wl < 1 or ws < 1:
            raise ValueError("wl and ws must be positive")
        n = model.n_sensors
        blocks = int(blocks)
        self._bstarts, self._bends = partition_bounds(n, blocks)
        self.blocks = blocks
        self.wl = int(wl)
        self.ws = int(ws)
        # Bounds are stored in sorted (permuted) row order so each pushed
        # sample is gathered and normalized in one pass.
        perm = model.permutation
        self._perm = perm
        self._lower = model.lower[perm]
        span = model.upper[perm] - self._lower
        self._degenerate = span <= 0.0
        self._degenerate_any = bool(self._degenerate.any())
        self._span = np.where(self._degenerate, 1.0, span)
        self._n = n
        # Ring of sorted, normalized samples sized wl+1 so the sample
        # preceding the current window stays available for the exact
        # first backward difference.
        self._ring = np.zeros((n, self.wl + 1))
        self._csum = np.zeros(n)
        # FIFO of (window start index, cumulative sum before that start);
        # holds at most ceil(wl / ws) + 1 entries.
        self._pending: deque[tuple[int, np.ndarray]] = deque()
        self._count = 0
        self.emitted = 0
        # The emit rule, shared with the offline plan (t is irrelevant
        # to the rule and unknown for a stream).
        self._schedule = WindowPlan(0, self.wl, self.ws)
        self._last_anchor = 0

    # ------------------------------------------------------------------
    @property
    def n_sensors(self) -> int:
        return self._n

    @property
    def count(self) -> int:
        """Total samples absorbed so far."""
        return self._count

    @property
    def state_nbytes(self) -> int:
        """Bytes of retained streaming state (ring, sums, snapshots,
        model rows) — the staged path's memory-per-node, compared
        against ``TickArena.memory_report()`` by the tick benchmark."""
        return (
            self._ring.nbytes
            + self._csum.nbytes
            + sum(snap.nbytes for _, snap in self._pending)
            + self._perm.nbytes
            + self._lower.nbytes
            + self._span.nbytes
            + self._degenerate.nbytes
        )

    def _normalize(self, cols: np.ndarray) -> np.ndarray:
        """Sort + min-max normalize raw columns (original row order)."""
        out = np.asarray(cols, dtype=np.float64)[self._perm] - self._lower[:, None]
        np.divide(out, self._span[:, None], out=out)
        if self._degenerate_any:
            out[self._degenerate, :] = 0.5
        np.clip(out, 0.0, 1.0, out=out)
        return out

    # ------------------------------------------------------------------
    def push(self, sample: np.ndarray) -> np.ndarray | None:
        """Absorb one raw sample vector; return a signature when due."""
        sample = np.asarray(sample, dtype=np.float64)
        if sample.shape != (self._n,):
            raise ValueError(
                f"sample shape {sample.shape} does not match "
                f"({self._n},) sensors"
            )
        col = self._normalize_one(sample)
        t = self._count
        if t % self.ws == 0:
            self._pending.append((t, self._csum.copy()))
        self._csum += col
        self._ring[:, t % (self.wl + 1)] = col
        self._count = t + 1
        if not self._schedule.emits_at(self._count):
            return None
        sig = self._emit_one()
        if self._count - self._last_anchor >= self._REANCHOR_INTERVAL:
            self._reanchor()
        return sig

    def _normalize_one(self, sample: np.ndarray) -> np.ndarray:
        """Sort + normalize one raw sample (lean 1-D variant)."""
        out = sample[self._perm] - self._lower
        out /= self._span
        if self._degenerate_any:
            out[self._degenerate] = 0.5
        np.clip(out, 0.0, 1.0, out=out)
        return out

    #: Samples between re-anchorings of the running cumulative sum.  An
    #: ever-growing prefix sum would slowly lose absolute precision on an
    #: unbounded stream (the difference of two large floats); subtracting
    #: the current sum from itself and every pending snapshot restores
    #: full precision without changing any window sum mathematically.
    #: Signatures are bit-identical to the offline batched path up to the
    #: first re-anchor; afterwards accuracy is prioritized over bit parity
    #: with an offline cumsum over the entire (by then huge) history.
    _REANCHOR_INTERVAL = REANCHOR_INTERVAL

    def _reanchor(self) -> None:
        base = self._csum.copy()
        self._csum -= base  # exact zeros
        for _, snapshot in self._pending:
            snapshot -= base
        self._last_anchor = self._count

    def _emit_one(self) -> np.ndarray:
        start, csum0 = self._pending.popleft()
        value_row_means = (self._csum - csum0) / self.wl
        size = self.wl + 1
        last = self._ring[:, (self._count - 1) % size]
        ref_idx = start - 1 if start > 0 else start
        deriv_row_means = (last - self._ring[:, ref_idx % size]) / self.wl
        sig = np.empty(self.blocks, dtype=np.complex128)
        sig.real = segment_means(value_row_means, self._bstarts, self._bends)
        sig.imag = segment_means(deriv_row_means, self._bstarts, self._bends)
        self.emitted += 1
        return sig

    # ------------------------------------------------------------------
    def push_block(self, block: np.ndarray) -> np.ndarray:
        """Absorb a block of raw samples; return all due signatures.

        Parameters
        ----------
        block:
            Raw samples as columns, shape ``(n, m)`` — the same layout as
            every sensor matrix in the repository.

        Returns
        -------
        numpy.ndarray
            Complex array of shape ``(k, l)`` holding the ``k``
            signatures whose windows complete inside the block (possibly
            ``k == 0``), identical to what ``m`` individual
            :meth:`push` calls would have returned.
        """
        B = np.asarray(block, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self._n:
            raise ValueError(
                f"block shape {B.shape} does not match ({self._n}, m) layout"
            )
        if B.shape[1] == 0:
            return np.empty((0, self.blocks), dtype=np.complex128)
        return self._absorb(B)

    def _absorb(self, B: np.ndarray) -> np.ndarray:
        """Vectorized batched ingestion behind :meth:`push_block`."""
        m = B.shape[1]
        cols = self._normalize(B)
        t0 = self._count
        size = self.wl + 1
        total = t0 + m

        # Chronological tail of pre-block history (for derivative refs),
        # rebuilt from at most two contiguous ring slices.
        tail_len = min(size, t0)
        if tail_len:
            pos0 = (t0 - tail_len) % size
            if pos0 + tail_len <= size:
                tail = self._ring[:, pos0 : pos0 + tail_len]
            else:
                tail = np.concatenate(
                    [self._ring[:, pos0:], self._ring[:, : pos0 + tail_len - size]],
                    axis=1,
                )
            ext = np.concatenate([tail, cols], axis=1)
        else:
            ext = cols
        base = t0 - tail_len  # global index of ext[:, 0]

        # Sequential prefix sums continuing the running cumulative sum:
        # seq[:, j] is the cumulative sum after t0 + j samples, built with
        # the exact same left-to-right association as repeated push().
        seq = np.cumsum(np.concatenate([self._csum[:, None], cols], axis=1), axis=1)

        # Emit counts due inside this block — the closed form of
        # WindowPlan.emits_at over c = wl + k*ws with t0 < c <= total.
        k_lo = max(0, -(-(t0 + 1 - self.wl) // self.ws))
        k_hi = (total - self.wl) // self.ws
        sigs = np.empty((max(0, k_hi - k_lo + 1), self.blocks), dtype=np.complex128)
        if k_hi >= k_lo:
            counts = self.wl + np.arange(k_lo, k_hi + 1) * self.ws
            starts = counts - self.wl
            end_csums = seq[:, counts - t0].T  # (k, n)
            start_csums = np.empty_like(end_csums)
            for i, s in enumerate(starts):
                if s >= t0:
                    start_csums[i] = seq[:, s - t0]
                else:
                    ps, vec = self._pending.popleft()
                    assert ps == s, f"pending start {ps} != expected {s}"
                    start_csums[i] = vec
            value_row_means = (end_csums - start_csums) / self.wl
            last_cols = ext[:, counts - 1 - base].T
            ref_idx = np.where(starts > 0, starts - 1, starts)
            deriv_row_means = (last_cols - ext[:, ref_idx - base].T) / self.wl
            sigs.real = segment_means(value_row_means, self._bstarts, self._bends)
            sigs.imag = segment_means(deriv_row_means, self._bstarts, self._bends)
            self.emitted += sigs.shape[0]

        # Queue cumulative-sum snapshots for window starts inside the
        # block whose windows complete after it.
        first_start = -(-t0 // self.ws) * self.ws
        for s in range(first_start, total, self.ws):
            if s + self.wl > total:
                self._pending.append((s, seq[:, s - t0].copy()))

        # Advance state: running sum, ring buffer, sample count.
        self._csum = seq[:, -1].copy()
        keep_from = max(t0, total - size)
        self._ring[:, np.arange(keep_from, total) % size] = ext[
            :, keep_from - base : total - base
        ]
        self._count = total
        if self._count - self._last_anchor >= self._REANCHOR_INTERVAL:
            self._reanchor()
        return sigs

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot the retained streaming state (decoupled copies).

        The returned arrays fully determine future emissions given the
        same model: restoring them into a fresh core over the same model
        continues the stream **bit-identically** — the contract the
        service checkpoint layer (`repro.service.checkpoint`) builds its
        crash-recovery guarantee on.  Pending window-start snapshots are
        flattened into parallel ``(k,)`` starts / ``(k, n)`` sums arrays
        so the state is pure ndarrays (npz-serializable as-is).
        """
        k = len(self._pending)
        starts = np.fromiter(
            (s for s, _ in self._pending), dtype=np.int64, count=k
        )
        snaps = (
            np.stack([snap for _, snap in self._pending])
            if k
            else np.empty((0, self._n))
        )
        return {
            "ring": self._ring.copy(),
            "csum": self._csum.copy(),
            "count": int(self._count),
            "emitted": int(self.emitted),
            "anchor": int(self._last_anchor),
            "pending_starts": starts,
            "pending_snaps": snaps,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (validated, copied)."""
        ring = np.asarray(state["ring"], dtype=np.float64)
        csum = np.asarray(state["csum"], dtype=np.float64)
        starts = np.asarray(state["pending_starts"], dtype=np.int64)
        snaps = np.asarray(state["pending_snaps"], dtype=np.float64)
        if ring.shape != self._ring.shape:
            raise ValueError(
                f"ring shape {ring.shape} does not match "
                f"{self._ring.shape} for this core"
            )
        if csum.shape != (self._n,):
            raise ValueError(
                f"csum shape {csum.shape} does not match ({self._n},)"
            )
        if snaps.shape != (starts.shape[0], self._n):
            raise ValueError(
                f"pending snapshot shape {snaps.shape} does not match "
                f"({starts.shape[0]}, {self._n})"
            )
        self._ring = ring.copy()
        self._csum = csum.copy()
        self._count = int(state["count"])
        self.emitted = int(state["emitted"])
        self._last_anchor = int(state["anchor"])
        self._pending = deque(
            (int(s), snaps[i].copy()) for i, s in enumerate(starts)
        )

    # ------------------------------------------------------------------
    def window_view(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Materialize the current (sorted, normalized) window.

        Uses at most two contiguous slices of the ring buffer — no
        modulo gather.  Returns ``(window, prev_column)`` where ``prev``
        is the sorted sample preceding the window, or ``None`` when the
        window starts at the first sample ever seen.

        Raises
        ------
        ValueError
            If fewer than ``wl`` samples have been pushed.
        """
        if self._count < self.wl:
            raise ValueError(
                f"only {self._count} samples absorbed; window needs {self.wl}"
            )
        size = self.wl + 1
        i0 = (self._count - self.wl) % size
        if i0 + self.wl <= size:
            window = self._ring[:, i0 : i0 + self.wl].copy()
        else:
            window = np.concatenate(
                [self._ring[:, i0:], self._ring[:, : i0 + self.wl - size]], axis=1
            )
        prev = None
        if self._count > self.wl:
            prev = self._ring[:, (self._count - self.wl - 1) % size].copy()
        return window, prev

"""Fleet-scale batched signature service.

The paper positions CS as a *fleet-wide* online method, yet the seed
repository could only compute signatures one node at a time — an
experiment over hundreds of nodes paid the full Python + NumPy dispatch
overhead per node.  :class:`FleetSignatureEngine` holds one trained CS
model per monitored node, keyed by hierarchical sensor-tree paths
(``rack0/node3``), and computes signatures for the whole fleet in a
handful of batched NumPy calls: nodes with identical geometry are
stacked into a single ``(nodes, n, t)`` tensor and pushed through the
batched sort + smooth kernels at once.  An optional ``shards`` argument
splits the batch across a thread pool (NumPy releases the GIL inside the
heavy kernels), for multi-core fleets.

Per-node results are bit-identical to
:meth:`repro.core.pipeline.CorrelationWiseSmoothing.transform_series`,
so offline experiments, the online stream and the fleet service can be
mixed freely.
"""

from __future__ import annotations

import fnmatch
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.model import CSModel
from repro.core.training import train_cs_model
from repro.engine.batch import normalize_rows_batch, smooth_windows_batch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitoring.sensor_tree import SensorTree

__all__ = ["FleetSignatureEngine"]


class FleetSignatureEngine:
    """Per-node CS models + batched fleet-wide signature computation.

    Parameters
    ----------
    blocks:
        Signature blocks ``l`` per node, or ``"all"`` for one block per
        sensor.  A block count above a node's sensor count is clamped to
        it (the CS-All configuration), so heterogeneous fleets work.
    wl, ws:
        Aggregation window length and step, in samples.
    tree:
        Optional :class:`~repro.monitoring.sensor_tree.SensorTree`; when
        given, node paths are validated against it and sensor names are
        taken from it if not supplied explicitly.
    """

    def __init__(
        self,
        blocks: int | str = "all",
        *,
        wl: int,
        ws: int,
        tree: "SensorTree | None" = None,
    ):
        if isinstance(blocks, str):
            if blocks.lower() != "all":
                raise ValueError(f"blocks must be an int or 'all', got {blocks!r}")
            self.blocks: int | None = None
        else:
            blocks = int(blocks)
            if blocks < 1:
                raise ValueError("blocks must be >= 1")
            self.blocks = blocks
        if wl < 1 or ws < 1:
            raise ValueError("wl and ws must be positive")
        self.wl = int(wl)
        self.ws = int(ws)
        self.tree = tree
        self._models: dict[str, CSModel] = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    @property
    def paths(self) -> list[str]:
        """Sorted paths of all registered nodes."""
        return sorted(self._models)

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, path: str) -> bool:
        return path in self._models

    def model(self, path: str) -> CSModel:
        """The trained model of one node (KeyError if absent)."""
        return self._models[path]

    def _tree_names(self, path: str) -> tuple[str, ...] | None:
        if self.tree is None:
            return None
        try:
            names = self.tree.sensors(path)
        except (KeyError, ValueError):
            raise ValueError(f"node path {path!r} not present in the sensor tree")
        if not names:
            raise ValueError(f"node path {path!r} has no sensors in the tree")
        return tuple(names)

    def set_model(self, path: str, model: CSModel) -> "FleetSignatureEngine":
        """Install a pre-trained (possibly shipped-in) model for a node."""
        self._tree_names(path)  # path validation only
        self._models[str(path)] = model
        return self

    def fit_node(
        self,
        path: str,
        history: np.ndarray,
        *,
        sensor_names: Sequence[str] | None = None,
    ) -> "FleetSignatureEngine":
        """Train one node's CS model on its historical matrix ``(n, t)``."""
        tree_names = self._tree_names(path)
        if sensor_names is None:
            sensor_names = tree_names
        history = np.asarray(history, dtype=np.float64)
        if tree_names is not None and history.shape[0] != len(tree_names):
            raise ValueError(
                f"history for {path!r} has {history.shape[0]} rows but the "
                f"tree lists {len(tree_names)} sensors"
            )
        self._models[str(path)] = train_cs_model(history, sensor_names=sensor_names)
        return self

    def fit_fleet(
        self, histories: Mapping[str, np.ndarray]
    ) -> "FleetSignatureEngine":
        """Train every node of the fleet from a ``path -> history`` mapping."""
        for path in sorted(histories):
            self.fit_node(path, histories[path])
        return self

    def select(self, pattern: str) -> list[str]:
        """Registered node paths matching a per-segment glob pattern.

        Matching follows :meth:`SensorTree.glob` semantics: ``*`` matches
        within one slash-separated segment, so ``rack0/*`` selects every
        node of rack 0 but not deeper descendants.
        """
        pat_parts = [p for p in pattern.split("/") if p]
        out = []
        for path in self.paths:
            parts = path.split("/")
            if len(parts) == len(pat_parts) and all(
                fnmatch.fnmatchcase(p, q) for p, q in zip(parts, pat_parts)
            ):
                out.append(path)
        return out

    def signature_length(self, path: str) -> int:
        """Blocks per signature emitted for one node."""
        return self._effective_blocks(self._models[path].n_sensors)

    def stream(self, path: str):
        """A live :class:`~repro.monitoring.streaming.OnlineSignatureStream`
        for one node, built from its registered model.

        The stream shares the engine's blocks/wl/ws, so signatures it
        emits are bit-identical to :meth:`transform_node` over the same
        samples — the online serving layer (``repro.service``) keys one
        such stream per sensor-tree path.
        """
        from repro.monitoring.streaming import OnlineSignatureStream

        model = self._models[path]
        return OnlineSignatureStream.from_model(
            model,
            self._effective_blocks(model.n_sensors),
            wl=self.wl,
            ws=self.ws,
        )

    def _effective_blocks(self, n: int) -> int:
        return n if self.blocks is None else min(self.blocks, n)

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def transform_node(self, path: str, S: np.ndarray) -> np.ndarray:
        """Signatures of one node's matrix ``(n, t)``: shape ``(num, l)``."""
        return self._run_group([path], {path: np.asarray(S, dtype=np.float64)})[path]

    def transform_fleet(
        self,
        data: Mapping[str, np.ndarray],
        *,
        shards: int | None = None,
    ) -> dict[str, np.ndarray]:
        """Signatures for many nodes in one batched call.

        Parameters
        ----------
        data:
            Mapping of node path to sensor matrix ``(n, t)``.  Every path
            must have been fitted (or given a model) beforehand.
        shards:
            Optional number of worker threads; the batched groups are
            split across them.  Results are independent of sharding.

        Returns
        -------
        dict
            Node path to complex signature matrix ``(num, l)``.
        """
        arrays = {}
        for path in data:
            if path not in self._models:
                raise KeyError(f"no model fitted for node {path!r}")
            A = np.asarray(data[path], dtype=np.float64)
            if A.ndim != 2:
                raise ValueError(f"matrix for {path!r} must be 2-D, got {A.shape}")
            if A.shape[0] != self._models[path].n_sensors:
                raise ValueError(
                    f"matrix for {path!r} has {A.shape[0]} rows but its model "
                    f"was trained on {self._models[path].n_sensors} sensors"
                )
            arrays[path] = A

        # Nodes sharing (n, t, l) geometry run as one stacked tensor.
        groups: dict[tuple[int, int, int], list[str]] = {}
        for path in sorted(arrays):
            n, t = arrays[path].shape
            key = (n, t, self._effective_blocks(n))
            groups.setdefault(key, []).append(path)

        worklists = list(groups.values())
        if shards is not None and shards > 1:
            # Split large groups so every worker gets comparable batches.
            split: list[list[str]] = []
            for paths in worklists:
                step = -(-len(paths) // shards)
                split.extend(
                    paths[i : i + step] for i in range(0, len(paths), step)
                )
            out: dict[str, np.ndarray] = {}
            with ThreadPoolExecutor(max_workers=shards) as pool:
                for part in pool.map(
                    lambda ps: self._run_group(ps, arrays), split
                ):
                    out.update(part)
            return out
        out = {}
        for paths in worklists:
            out.update(self._run_group(paths, arrays))
        return out

    #: Target working-set size per batched chunk.  Chunks sized to stay
    #: cache-resident beat both the per-node loop (NumPy dispatch is
    #: amortized across the chunk) and one giant fleet tensor (whose
    #: every pass spills to main memory).  Chunking is along nodes, so
    #: per-node results are unaffected.
    _CHUNK_TARGET_BYTES = 1 << 20

    def _run_group(
        self, paths: list[str], arrays: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Sort + smooth a group of same-geometry nodes, chunk by chunk."""
        n, t = arrays[paths[0]].shape
        l = self._effective_blocks(n)
        chunk = int(max(1, min(64, self._CHUNK_TARGET_BYTES // max(1, n * t * 8))))
        out: dict[str, np.ndarray] = {}
        for i in range(0, len(paths), chunk):
            part = paths[i : i + chunk]
            c = len(part)
            # Gather each node's rows straight into the chunk buffer (one
            # pass) instead of stacking raw matrices and re-gathering,
            # then normalize in place through the shared batch kernel so
            # the bits match sort_rows() exactly.
            buf = np.empty((c, n, t))
            lower = np.empty((c, n))
            upper = np.empty((c, n))
            for j, path in enumerate(part):
                model = self._models[path]
                perm = model.permutation
                np.take(arrays[path], perm, axis=0, out=buf[j])
                lower[j] = model.lower[perm]
                upper[j] = model.upper[perm]
            normalize_rows_batch(buf, lower, upper, out=buf)
            sigs = smooth_windows_batch(buf, l, self.wl, self.ws)
            out.update(zip(part, sigs))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        blocks = "all" if self.blocks is None else self.blocks
        return (
            f"FleetSignatureEngine(nodes={len(self)}, blocks={blocks}, "
            f"wl={self.wl}, ws={self.ws})"
        )

"""Lan et al. baseline: mean-filter sub-sampled raw series.

Each sensor row of the window is sub-sampled to a fixed length ``wr``
(smaller than ``wl``) with a mean filter and concatenated into the
signature, preserving coarse time information (Section III-B).  The CS
paper replaces the original method's flatten+PCA with this sub-sampling
step for scalability; the signature size is ``l = n * wr``.

The mean filter re-uses the CS blocking scheme along the *time* axis: the
``wl`` samples are split into ``wr`` near-equal (possibly overlapping)
chunks and each chunk is averaged, which handles ``wl % wr != 0``
gracefully.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SignatureMethod, register_method
from repro.core.blocks import block_bounds
from repro.engine.windows import segment_means

__all__ = ["LanSignature", "DEFAULT_WR"]

#: Default sub-sampled length per sensor; keeps Lan's signature between
#: Bodik's (9/sensor) and the raw window, matching Figure 3b where Lan is
#: the smallest baseline yet larger than low-block CS.
DEFAULT_WR = 5


def _mean_filter(windows: np.ndarray, wr: int) -> np.ndarray:
    """Sub-sample the time axis of ``(num, n, wl)`` windows to ``wr``."""
    num, n, wl = windows.shape
    starts, ends = block_bounds(wl, wr)
    return segment_means(windows, starts, ends).reshape(num, n * wr)


class LanSignature(SignatureMethod):
    """Sub-sampled raw-series signature of Lan et al. [TPDS 2009].

    Parameters
    ----------
    wr:
        Target number of samples per sensor after the mean filter.  If a
        window is shorter than ``wr`` the whole window is used per sensor
        without padding (``l`` shrinks accordingly).
    """

    name = "Lan"

    def __init__(self, wr: int = DEFAULT_WR):
        if wr < 1:
            raise ValueError("wr must be >= 1")
        self.wr = int(wr)

    def _effective_wr(self, wl: int) -> int:
        return min(self.wr, wl)

    def transform(self, Sw: np.ndarray) -> np.ndarray:
        Sw = np.asarray(Sw, dtype=np.float64)
        if Sw.ndim != 2:
            raise ValueError(f"window must be 2-D, got shape {Sw.shape}")
        return _mean_filter(Sw[None], self._effective_wr(Sw.shape[1]))[0]

    def transform_batch(self, windows: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=np.float64)
        return _mean_filter(windows, self._effective_wr(windows.shape[2]))

    def feature_length(self, n: int, wl: int) -> int:
        return n * self._effective_wr(wl)


register_method("lan", LanSignature)

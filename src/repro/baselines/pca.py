"""PCA signature baseline (related work, Section I-A).

"Principal Component Analysis (PCA) and Independent Component Analysis
compress a multi-dimensional dataset to a lower-dimensionality space in
which each dimension is a linear combination of the original ones."

The signature of a window is built by projecting each time sample onto
``k`` principal axes learned from historical data and averaging the
projections over the window (mean + standard deviation per component, so
some temporal information survives).  The paper notes such methods "have
been proven to not work well in HPC and data center-specific ODA
problems, such as fault detection, in which critical status indicators
are not found in the metrics that contribute to most of the variance" —
the extra-baseline ablation bench checks exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SignatureMethod, register_method
from repro.ml.decomposition import PCA

__all__ = ["PCASignature"]


class PCASignature(SignatureMethod):
    """Window signature from PCA projections of the sensor vector.

    Parameters
    ----------
    n_components:
        Number of principal axes ``k``; the signature length is ``2 * k``
        (mean and standard deviation of each projected coordinate over
        the window).
    """

    name = "PCA"

    def __init__(self, n_components: int = 10):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = int(n_components)
        self._pca: PCA | None = None

    def fit(self, S: np.ndarray) -> "PCASignature":
        S = np.asarray(S, dtype=np.float64)
        if S.ndim != 2:
            raise ValueError(f"sensor matrix must be 2-D, got {S.shape}")
        # Samples are time steps; features are sensors.
        k = min(self.n_components, S.shape[0])
        self._pca = PCA(n_components=k).fit(S.T)
        return self

    def _require_fit(self, n: int) -> PCA:
        if self._pca is None:
            raise RuntimeError("PCASignature must be fitted first")
        if self._pca.mean_.shape[0] != n:
            raise ValueError(
                f"window has {n} sensors but PCA was fitted on "
                f"{self._pca.mean_.shape[0]}"
            )
        return self._pca

    def transform(self, Sw: np.ndarray) -> np.ndarray:
        Sw = np.asarray(Sw, dtype=np.float64)
        if Sw.ndim != 2:
            raise ValueError(f"window must be 2-D, got shape {Sw.shape}")
        pca = self._require_fit(Sw.shape[0])
        proj = pca.transform(Sw.T)  # (wl, k)
        return np.concatenate([proj.mean(axis=0), proj.std(axis=0)])

    def transform_batch(self, windows: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=np.float64)  # (num, n, wl)
        pca = self._require_fit(windows.shape[1])
        # Project all windows at once: (num, wl, k).
        centered = windows.transpose(0, 2, 1) - pca.mean_
        proj = centered @ pca.components_.T
        return np.concatenate([proj.mean(axis=1), proj.std(axis=1)], axis=1)

    def transform_series(self, S: np.ndarray, wl: int, ws: int) -> np.ndarray:
        S = np.asarray(S, dtype=np.float64)
        if self._pca is None:
            self.fit(S)
        return super().transform_series(S, wl, ws)

    def feature_length(self, n: int, wl: int) -> int:
        k = self.n_components if self._pca is None else self._pca.components_.shape[0]
        return 2 * min(k, n)


register_method("pca", PCASignature)

"""Baseline signature methods from the literature (Section III-B).

Three methods the paper compares against, all production-grade approaches
for data-center monitoring data:

* :class:`~repro.baselines.tuncer.TuncerSignature` — 11 statistical
  indicators per sensor (Tuncer et al., TPDS 2018);
* :class:`~repro.baselines.bodik.BodikSignature` — 9 percentile-based
  indicators per sensor (Bodik et al., EuroSys 2010);
* :class:`~repro.baselines.lan.LanSignature` — mean-filter sub-sampling of
  each sensor row (Lan et al., TPDS 2009; sub-sampling step added by the
  CS paper for scalability).

Beyond the paper's three baselines, the related-work methods discussed in
Section I-A are implemented as *extra* baselines for the ablation
benches: :class:`~repro.baselines.pca.PCASignature` (variance-based
dimensionality reduction), :class:`~repro.baselines.sax.SAXSignature`
(symbolic time/value aggregation) and
:class:`~repro.baselines.corrmat.CorrelationMatrixSignature` (Laguna et
al.'s pairwise-correlation signature).

All share the :class:`~repro.baselines.base.SignatureMethod` interface so
the experiment harness can treat them and CS uniformly.
"""

from repro.baselines.base import SignatureMethod, get_method, list_methods
from repro.baselines.bodik import BodikSignature
from repro.baselines.corrmat import CorrelationMatrixSignature
from repro.baselines.lan import LanSignature
from repro.baselines.pca import PCASignature
from repro.baselines.sax import SAXSignature
from repro.baselines.tuncer import TuncerSignature

__all__ = [
    "SignatureMethod",
    "TuncerSignature",
    "BodikSignature",
    "LanSignature",
    "PCASignature",
    "SAXSignature",
    "CorrelationMatrixSignature",
    "get_method",
    "list_methods",
]

"""Common interface for signature methods.

A *signature method* is a function ``Sig()`` that maps a window ``Sw`` of
the sensor matrix (shape ``(n, wl)``) to a feature vector of length ``l``
with ``l << n * wl`` (Section III-A).  This module defines the abstract
base class shared by the baselines and by the CS adapter used in the
experiment harness, plus a small registry so experiments can select
methods by name (``"tuncer"``, ``"bodik"``, ``"lan"``, ``"cs-20"``, ...).

Windowed execution routes through :mod:`repro.engine`:
:meth:`SignatureMethod.transform_series` builds one zero-copy
:func:`~repro.engine.windows.windowed_view` of all windows and hands the
stack to :meth:`SignatureMethod.transform_batch`, which every shipped
method implements as a single vectorized kernel — the historical
per-window Python loop survives only as the documented fallback for
third-party subclasses that implement nothing but ``transform``.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.engine.windows import WindowPlan, windowed_view

__all__ = ["SignatureMethod", "register_method", "get_method", "list_methods"]


class SignatureMethod(abc.ABC):
    """Abstract signature extractor over sensor-matrix windows."""

    #: Short display name used in result tables.
    name: str = "abstract"

    def fit(self, S: np.ndarray) -> "SignatureMethod":
        """Learn any state needed from historical data (default: none)."""
        return self

    @abc.abstractmethod
    def transform(self, Sw: np.ndarray) -> np.ndarray:
        """Map one window (shape ``(n, wl)``) to a flat feature vector."""

    @abc.abstractmethod
    def feature_length(self, n: int, wl: int) -> int:
        """Length of the produced feature vector for given window shape."""

    def transform_batch(self, windows: np.ndarray) -> np.ndarray:
        """Map a stack of windows ``(num, n, wl)`` to ``(num, l)`` features.

        Fallback implementation loops over :meth:`transform`; every
        shipped method overrides this with one vectorized kernel.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"window stack must be 3-D, got shape {windows.shape}")
        num, n, wl = windows.shape
        if num == 0:
            return np.empty((0, self.feature_length(n, wl)))
        return np.stack([self.transform(w) for w in windows])

    def transform_series(self, S: np.ndarray, wl: int, ws: int) -> np.ndarray:
        """Feature vectors for every sliding window of ``S``.

        Plans the windows with the engine, takes one zero-copy strided
        view of all of them and defers to :meth:`transform_batch`.
        """
        S = np.asarray(S, dtype=np.float64)
        n, t = S.shape
        plan = WindowPlan(t, wl, ws)
        if plan.num == 0:
            return np.empty((0, self.feature_length(n, wl)))
        return self.transform_batch(windowed_view(S, wl, ws))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, Callable[[], SignatureMethod]] = {}


def register_method(name: str, factory: Callable[[], SignatureMethod]) -> None:
    """Register a zero-argument factory under ``name`` (case-insensitive)."""
    _REGISTRY[name.lower()] = factory


def get_method(name: str) -> SignatureMethod:
    """Instantiate a registered signature method by name.

    Names of the form ``cs-<blocks>`` or ``cs-all`` build CS adapters; the
    three baselines are registered under ``tuncer``, ``bodik`` and ``lan``.
    """
    key = name.lower()
    if key in _REGISTRY:
        return _REGISTRY[key]()
    if key.startswith("cs-"):
        # Late import: avoids a circular import at package load time.
        from repro.baselines.cs_adapter import CSSignature

        spec = key[3:]
        blocks: int | str = "all" if spec == "all" else int(spec)
        return CSSignature(blocks=blocks)
    raise KeyError(
        f"unknown signature method {name!r}; known: {sorted(_REGISTRY)} "
        "plus 'cs-<blocks>' / 'cs-all'"
    )


def list_methods() -> list[str]:
    """Names of all statically registered methods."""
    return sorted(_REGISTRY)

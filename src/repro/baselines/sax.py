"""Symbolic Aggregate Approximation (SAX) baseline (related work, §I-A).

"Among these we find Symbolic Aggregate Approximation and Trend-value
Approximation, which aggregate time-series data both on the time and
value axes."

Classic SAX per sensor row: the window is Piecewise-Aggregate-
Approximated (PAA) to ``segments`` means, each mean is mapped to one of
``alphabet`` symbols via Gaussian breakpoints computed from the row's
training statistics, and the integer symbols of all rows are concatenated
into the signature.  The signature length is ``n * segments``.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.baselines.base import SignatureMethod, register_method
from repro.core.blocks import block_bounds
from repro.engine.windows import segment_means

__all__ = ["SAXSignature"]


class SAXSignature(SignatureMethod):
    """Per-sensor SAX symbols as an integer feature vector.

    Parameters
    ----------
    segments:
        PAA segments per sensor (time-axis aggregation).
    alphabet:
        Number of symbols (value-axis aggregation), ``2..26``.
    """

    name = "SAX"

    def __init__(self, segments: int = 4, alphabet: int = 8):
        if segments < 1:
            raise ValueError("segments must be >= 1")
        if not 2 <= alphabet <= 26:
            raise ValueError("alphabet must be in [2, 26]")
        self.segments = int(segments)
        self.alphabet = int(alphabet)
        # Gaussian breakpoints dividing N(0, 1) into equiprobable regions.
        self._breakpoints = norm.ppf(np.arange(1, alphabet) / alphabet)
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, S: np.ndarray) -> "SAXSignature":
        S = np.asarray(S, dtype=np.float64)
        if S.ndim != 2:
            raise ValueError(f"sensor matrix must be 2-D, got {S.shape}")
        self._mean = S.mean(axis=1)
        std = S.std(axis=1)
        self._std = np.where(std > 0, std, 1.0)
        return self

    def _normalize(self, windows: np.ndarray) -> np.ndarray:
        """Z-normalize per row with training stats (or per-window stats)."""
        if self._mean is not None and self._mean.shape[0] == windows.shape[1]:
            return (windows - self._mean[None, :, None]) / self._std[None, :, None]
        mean = windows.mean(axis=2, keepdims=True)
        std = windows.std(axis=2, keepdims=True)
        return (windows - mean) / np.where(std > 0, std, 1.0)

    def _symbols(self, windows: np.ndarray) -> np.ndarray:
        num, n, wl = windows.shape
        seg = min(self.segments, wl)
        starts, ends = block_bounds(wl, seg)
        paa = segment_means(self._normalize(windows), starts, ends)
        symbols = np.searchsorted(self._breakpoints, paa.reshape(num, -1))
        return symbols.astype(np.float64)

    def transform(self, Sw: np.ndarray) -> np.ndarray:
        Sw = np.asarray(Sw, dtype=np.float64)
        if Sw.ndim != 2:
            raise ValueError(f"window must be 2-D, got shape {Sw.shape}")
        return self._symbols(Sw[None])[0]

    def transform_batch(self, windows: np.ndarray) -> np.ndarray:
        return self._symbols(np.asarray(windows, dtype=np.float64))

    def transform_series(self, S: np.ndarray, wl: int, ws: int) -> np.ndarray:
        S = np.asarray(S, dtype=np.float64)
        if self._mean is None:
            self.fit(S)
        return super().transform_series(S, wl, ws)

    def feature_length(self, n: int, wl: int) -> int:
        return n * min(self.segments, wl)


register_method("sax", SAXSignature)

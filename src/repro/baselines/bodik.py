"""Bodik et al. baseline: percentile fingerprints.

For each sensor row of the window, nine order statistics characterize the
distribution of its ``wl`` samples (Section III-B): minimum, maximum and
the 5th/25th/35th/50th/65th/75th/95th percentiles.  The signature is the
row-major concatenation, so ``l = n * 9``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SignatureMethod, register_method

__all__ = ["BodikSignature", "FEATURES_PER_SENSOR"]

FEATURES_PER_SENSOR = 9
_PERCENTILES = (5.0, 25.0, 35.0, 50.0, 65.0, 75.0, 95.0)


def _features(windows: np.ndarray) -> np.ndarray:
    """Compute the 9 indicators for a stack of windows ``(num, n, wl)``."""
    num, n, _ = windows.shape
    out = np.empty((num, n, FEATURES_PER_SENSOR))
    out[:, :, 0] = windows.min(axis=2)
    out[:, :, 1] = windows.max(axis=2)
    out[:, :, 2:] = np.moveaxis(
        np.percentile(windows, _PERCENTILES, axis=2), 0, -1
    )
    return out.reshape(num, n * FEATURES_PER_SENSOR)


class BodikSignature(SignatureMethod):
    """Percentile-fingerprint signature of Bodik et al. [EuroSys 2010]."""

    name = "Bodik"

    def transform(self, Sw: np.ndarray) -> np.ndarray:
        Sw = np.asarray(Sw, dtype=np.float64)
        if Sw.ndim != 2:
            raise ValueError(f"window must be 2-D, got shape {Sw.shape}")
        return _features(Sw[None])[0]

    def transform_batch(self, windows: np.ndarray) -> np.ndarray:
        return _features(np.asarray(windows, dtype=np.float64))

    def feature_length(self, n: int, wl: int) -> int:
        return n * FEATURES_PER_SENSOR


register_method("bodik", BodikSignature)

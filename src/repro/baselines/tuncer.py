"""Tuncer et al. baseline: statistical-indicator signatures.

For each sensor row of the window, eleven statistical indicators are
computed from its ``wl`` samples (Section III-B): mean, standard
deviation, minimum, maximum, the 5th/25th/50th/75th/95th percentiles, the
sum of changes and the absolute sum of changes.  (The last two replace the
skewness and kurtosis of the original publication, as the CS paper found
they perform better.)  The signature is the row-major concatenation, so
``l = n * 11``.

Percentile computation sorts each row, giving the ``O(wl log wl)``
per-dimension cost that shows up as the slightly super-linear curve of
Figure 5a.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SignatureMethod, register_method

__all__ = ["TuncerSignature", "FEATURES_PER_SENSOR"]

FEATURES_PER_SENSOR = 11
_PERCENTILES = (5.0, 25.0, 50.0, 75.0, 95.0)


def _features(windows: np.ndarray) -> np.ndarray:
    """Compute the 11 indicators for a stack of windows ``(num, n, wl)``."""
    num, n, wl = windows.shape
    out = np.empty((num, n, FEATURES_PER_SENSOR))
    out[:, :, 0] = windows.mean(axis=2)
    out[:, :, 1] = windows.std(axis=2)
    out[:, :, 2] = windows.min(axis=2)
    out[:, :, 3] = windows.max(axis=2)
    # One sort per row serves all five percentiles.
    out[:, :, 4:9] = np.moveaxis(
        np.percentile(windows, _PERCENTILES, axis=2), 0, -1
    )
    if wl > 1:
        diffs = np.diff(windows, axis=2)
        out[:, :, 9] = diffs.sum(axis=2)
        out[:, :, 10] = np.abs(diffs).sum(axis=2)
    else:
        out[:, :, 9:] = 0.0
    return out.reshape(num, n * FEATURES_PER_SENSOR)


class TuncerSignature(SignatureMethod):
    """Statistical-indicator signature of Tuncer et al. [TPDS 2018]."""

    name = "Tuncer"

    def transform(self, Sw: np.ndarray) -> np.ndarray:
        Sw = np.asarray(Sw, dtype=np.float64)
        if Sw.ndim != 2:
            raise ValueError(f"window must be 2-D, got shape {Sw.shape}")
        return _features(Sw[None])[0]

    def transform_batch(self, windows: np.ndarray) -> np.ndarray:
        return _features(np.asarray(windows, dtype=np.float64))

    def feature_length(self, n: int, wl: int) -> int:
        return n * FEATURES_PER_SENSOR


register_method("tuncer", TuncerSignature)

"""Adapter exposing Correlation-wise Smoothing as a ``SignatureMethod``.

The experiment harness treats every signature extractor uniformly through
the :class:`~repro.baselines.base.SignatureMethod` interface.  This adapter
wraps :class:`~repro.core.pipeline.CorrelationWiseSmoothing`, flattening
its complex signatures into real feature vectors (real parts followed by
imaginary parts, or real-only for the ``-R`` variants).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SignatureMethod
from repro.core.pipeline import CorrelationWiseSmoothing, signature_features

__all__ = ["CSSignature"]


class CSSignature(SignatureMethod):
    """CS method behind the common signature-method interface.

    Parameters
    ----------
    blocks:
        Number of blocks ``l`` or ``"all"`` (one block per sensor).
    real_only:
        Drop imaginary (derivative) components from the feature vector —
        the ``-R`` configurations of Figure 4.
    retrain:
        Re-run the training stage on every ``transform_series`` input.
    """

    def __init__(
        self,
        blocks: int | str = "all",
        *,
        real_only: bool = False,
        retrain: bool = False,
    ):
        self.cs = CorrelationWiseSmoothing(blocks=blocks, retrain=retrain)
        self.real_only = bool(real_only)
        suffix = "-R" if real_only else ""
        label = "All" if self.cs.blocks is None else str(self.cs.blocks)
        self.name = f"CS-{label}{suffix}"

    def fit(self, S: np.ndarray) -> "CSSignature":
        S = np.asarray(S)
        # A block count above the sensor count is clamped to one block per
        # sensor (the CS-All configuration): l <= n always holds, so the
        # experiment grids can run every method on every segment (e.g.
        # CS-40 on the 31-sensor Infrastructure racks).
        if self.cs.blocks is not None and self.cs.blocks > S.shape[0]:
            self.cs.blocks = int(S.shape[0])
        self.cs.fit(S)
        return self

    def transform(self, Sw: np.ndarray) -> np.ndarray:
        if not self.cs.is_fitted:
            self.cs.fit(Sw)
        return signature_features(self.cs.transform(Sw), real_only=self.real_only)

    def transform_series(self, S: np.ndarray, wl: int, ws: int) -> np.ndarray:
        sigs = self.cs.transform_series(S, wl, ws)
        return signature_features(sigs, real_only=self.real_only)

    def feature_length(self, n: int, wl: int) -> int:
        l = self.cs.signature_length(n) if self.cs.is_fitted else (
            n if self.cs.blocks is None else self.cs.blocks
        )
        return l if self.real_only else 2 * l

    @property
    def signature_length_hint(self) -> int | None:
        """Configured block count (``None`` means one per sensor)."""
        return self.cs.blocks

"""Correlation-matrix signature baseline (Laguna et al., related work §I-A).

"Laguna et al. use the pairwise correlation matrix associated with the
set of sensors as a signature."  The signature of a window is the upper
triangle of the Pearson correlation matrix of its rows — ``n (n-1) / 2``
coefficients — which captures *relational* state rather than levels.

Note the quadratic signature size: this baseline demonstrates exactly the
scalability problem that motivates aggregating methods like CS.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SignatureMethod, register_method

__all__ = ["CorrelationMatrixSignature"]


class CorrelationMatrixSignature(SignatureMethod):
    """Upper-triangle window correlation matrix as the signature."""

    name = "CorrMat"

    def transform(self, Sw: np.ndarray) -> np.ndarray:
        Sw = np.asarray(Sw, dtype=np.float64)
        if Sw.ndim != 2:
            raise ValueError(f"window must be 2-D, got shape {Sw.shape}")
        return self.transform_batch(Sw[None])[0]

    def transform_batch(self, windows: np.ndarray) -> np.ndarray:
        """All windows' correlation triangles in one batched matmul."""
        W = np.asarray(windows, dtype=np.float64)
        num, n, wl = W.shape
        if wl < 2:
            return np.zeros((num, self.feature_length(n, wl)))
        centered = W - W.mean(axis=2, keepdims=True)
        sigma = np.sqrt(np.einsum("wij,wij->wi", centered, centered))
        denom = sigma[:, :, None] * sigma[:, None, :]
        cov = centered @ centered.transpose(0, 2, 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 0, cov / np.where(denom > 0, denom, 1.0), 0.0)
        iu = np.triu_indices(n, k=1)
        return corr[:, iu[0], iu[1]]

    def feature_length(self, n: int, wl: int) -> int:
        return n * (n - 1) // 2


register_method("corrmat", CorrelationMatrixSignature)

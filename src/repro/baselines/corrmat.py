"""Correlation-matrix signature baseline (Laguna et al., related work §I-A).

"Laguna et al. use the pairwise correlation matrix associated with the
set of sensors as a signature."  The signature of a window is the upper
triangle of the Pearson correlation matrix of its rows — ``n (n-1) / 2``
coefficients — which captures *relational* state rather than levels.

Note the quadratic signature size: this baseline demonstrates exactly the
scalability problem that motivates aggregating methods like CS.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SignatureMethod, register_method

__all__ = ["CorrelationMatrixSignature"]


class CorrelationMatrixSignature(SignatureMethod):
    """Upper-triangle window correlation matrix as the signature."""

    name = "CorrMat"

    def transform(self, Sw: np.ndarray) -> np.ndarray:
        Sw = np.asarray(Sw, dtype=np.float64)
        if Sw.ndim != 2:
            raise ValueError(f"window must be 2-D, got shape {Sw.shape}")
        n, wl = Sw.shape
        if wl < 2:
            return np.zeros(self.feature_length(n, wl))
        centered = Sw - Sw.mean(axis=1, keepdims=True)
        sigma = np.sqrt(np.einsum("ij,ij->i", centered, centered))
        denom = np.outer(sigma, sigma)
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 0, (centered @ centered.T) / np.where(
                denom > 0, denom, 1.0), 0.0)
        iu = np.triu_indices(n, k=1)
        return corr[iu]

    def feature_length(self, n: int, wl: int) -> int:
        return n * (n - 1) // 2


register_method("corrmat", CorrelationMatrixSignature)

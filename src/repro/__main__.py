"""``python -m repro`` — the unified scenario CLI (see ``repro.cli``)."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())

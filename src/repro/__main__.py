"""``python -m repro`` — the unified scenario CLI (see ``repro.cli``).

Routes through :func:`repro.cli.console_main` so both entry points share
the Ctrl-C (exit 130) and broken-pipe (exit 141) handling.
"""

from repro.cli import console_main

if __name__ == "__main__":
    console_main()

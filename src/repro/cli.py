"""Unified experiment CLI: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------
``repro list``
    Show every registered scenario (name, kind, paper artifact, grid
    size, description).
``repro run <name>``
    Execute one scenario through the generic runner, with the shared
    ``--seed/--repeats/--scale/--smoke/--cache-dir`` flags plus output
    sinks (``--csv/--jsonl/--markdown``) and ``--out`` for binary
    artifacts.
``repro run-all``
    Execute every registered scenario (optionally filtered by ``--tag``),
    writing per-scenario CSV/markdown into ``--results-dir``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.reporting import (
    CSVSink,
    MarkdownSink,
    print_table,
)
from repro.scenarios.options import (
    add_shared_options,
    options_from_args,
    sinks_from_args,
)
from repro.scenarios.registry import get_scenario, list_scenarios
from repro.scenarios.runner import execute

__all__ = ["main", "console_main"]


def _status(message: str) -> None:
    """Progress/log output; stderr so stdout stays machine-consumable."""
    print(message, file=sys.stderr)


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_scenarios(tag=args.tag)
    rows = [
        (
            s.name,
            s.kind,
            s.paper or "—",
            len(s.datasets),
            len(s.methods),
            s.description,
        )
        for s in specs
    ]
    print_table(
        ("Name", "Kind", "Paper artifact", "Datasets", "Methods", "Description"),
        rows,
        title="Registered scenarios",
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = get_scenario(args.name)
    except KeyError as exc:
        _status(f"error: {exc.args[0]}")
        return 2
    options = options_from_args(args)
    result = execute(spec, options=options, sinks=sinks_from_args(args))
    stats = result.cache_stats
    cache_note = ""
    if options.cache_dir:
        cache_note = (
            f"  cache: {stats['segment_hits'] + stats['dataset_hits']} hits, "
            f"{stats['segment_misses'] + stats['dataset_misses']} misses"
        )
    _status(
        f"[{spec.name}] done in {result.wall_time_s:.2f}s "
        f"({len(result.rows)} rows){cache_note}"
    )
    for path in result.artifact_paths:
        _status(f"[{spec.name}] wrote {path}")
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    specs = list_scenarios(tag=args.tag)
    results_dir = Path(args.results_dir) if args.results_dir else None
    failures = []
    for spec in specs:
        _status(f"[{spec.name}] running ...")
        sinks = sinks_from_args(args, table=not args.quiet)
        if results_dir is not None:
            sinks.append(CSVSink(results_dir / f"{spec.name}.csv"))
            sinks.append(MarkdownSink(results_dir / f"{spec.name}.md"))
        try:
            result = execute(
                spec, options=options_from_args(args), sinks=sinks
            )
        except Exception as exc:  # surface every failure, run the rest
            failures.append((spec.name, exc))
            _status(f"[{spec.name}] FAILED: {exc}")
            continue
        _status(
            f"[{spec.name}] done in {result.wall_time_s:.2f}s "
            f"({len(result.rows)} rows)"
        )
    if failures:
        _status(f"{len(failures)}/{len(specs)} scenarios failed")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative scenario runner for the CS reproduction "
        "(paper figures/tables plus extended coverage).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show registered scenarios")
    p_list.add_argument("--tag", default=None, help="filter by tag")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one scenario")
    p_run.add_argument("name", help="registered scenario name")
    add_shared_options(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser("run-all", help="run every registered scenario")
    p_all.add_argument("--tag", default=None, help="filter by tag")
    p_all.add_argument(
        "--results-dir",
        default=None,
        help="write per-scenario CSV + markdown summaries here",
    )
    p_all.add_argument(
        "--quiet", action="store_true", help="suppress stdout tables"
    )
    add_shared_options(
        p_all, "--seed", "--repeats", "--scale", "--trees", "--smoke",
        "--cache-dir", "--out",
    )
    p_all.set_defaults(func=_cmd_run_all)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


def console_main() -> None:  # pragma: no cover - setuptools entry point
    import os

    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into `head` etc. closes stdout early; exit quietly with
        # the conventional 128 + SIGPIPE status instead of a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)

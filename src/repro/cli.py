"""Unified experiment CLI: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------
``repro list``
    Show every registered scenario (name, kind, paper artifact, grid
    size, description).
``repro run <name>``
    Execute one scenario through the generic runner, with the shared
    ``--seed/--repeats/--scale/--smoke/--cache-dir`` flags plus output
    sinks (``--csv/--jsonl/--markdown``) and ``--out`` for binary
    artifacts.
``repro run-all``
    Execute every registered scenario (optionally filtered by ``--tag``),
    writing per-scenario CSV/markdown into ``--results-dir``.
``repro detect``
    Deterministic replay of a (cached) fault-fleet through the online
    detection service (``repro.service``): alert JSONL to ``--alerts``
    or stdout, scored summary to stderr.  Byte-identical output across
    processes for the same flags.
``repro serve``
    The same fleet served *live*: bursts are ingested tick by tick and
    alert events stream to stdout the moment they fire.  Ctrl-C exits
    cleanly with status 130 after finishing the in-flight tick, flushing
    open alerts and (with ``--checkpoint``) writing a final checkpoint.
    With ``--listen HOST:PORT`` the feed instead arrives over TCP as
    ``repro-ticks/v1`` frames (plus an optional ``--ops`` HTTP API);
    adding ``--wal DIR --checkpoint F.npz`` makes serving crash-durable
    (kill -9, restart, byte-identical alert JSONL) and ``--supervise``
    wraps it in a crash-restart loop.
``repro loadgen``
    Drive a ``repro serve --listen`` server over the network with the
    exact deterministic feed ``repro detect`` would replay in-process —
    the two alert streams are byte-identical.  ``--resume`` makes the
    client crash-tolerant too: it follows per-tick acks and resends
    everything after the last acked tick across reconnects.
``repro netchaos``
    A seeded TCP chaos proxy to put between the two: latency, resets,
    partitions, corruption and truncation drawn deterministically from
    ``(seed, connection, byte offset)``.
``repro store``
    The columnar telemetry store (``repro-telestore/v1``): ``record`` a
    fleet's held-out feed into a time-partitioned on-disk store, then
    ``stat``/``verify``/``compact``/``prune`` it.  ``repro detect
    --from-store DIR`` replays a recorded window through the detector at
    max speed with byte-identical alert JSONL to live ingestion.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.reporting import (
    CSVSink,
    MarkdownSink,
    print_table,
)
from repro.scenarios.options import (
    add_shared_options,
    options_from_args,
    sinks_from_args,
)
from repro.scenarios.registry import get_scenario, list_scenarios
from repro.scenarios.runner import execute

__all__ = ["main", "console_main"]


def _status(message: str) -> None:
    """Progress/log output; stderr so stdout stays machine-consumable."""
    print(message, file=sys.stderr)


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_scenarios(tag=args.tag)
    rows = [
        (
            s.name,
            s.kind,
            s.paper or "—",
            len(s.datasets),
            len(s.methods),
            s.description,
        )
        for s in specs
    ]
    print_table(
        ("Name", "Kind", "Paper artifact", "Datasets", "Methods", "Description"),
        rows,
        title="Registered scenarios",
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = get_scenario(args.name)
    except KeyError as exc:
        _status(f"error: {exc.args[0]}")
        return 2
    options = options_from_args(args)
    result = execute(spec, options=options, sinks=sinks_from_args(args))
    stats = result.cache_stats
    cache_note = ""
    if options.cache_dir:
        cache_note = (
            f"  cache: {stats['segment_hits'] + stats['dataset_hits']} hits, "
            f"{stats['segment_misses'] + stats['dataset_misses']} misses"
        )
    _status(
        f"[{spec.name}] done in {result.wall_time_s:.2f}s "
        f"({len(result.rows)} rows){cache_note}"
    )
    for path in result.artifact_paths:
        _status(f"[{spec.name}] wrote {path}")
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    specs = list_scenarios(tag=args.tag)
    results_dir = Path(args.results_dir) if args.results_dir else None
    failures = []
    for spec in specs:
        _status(f"[{spec.name}] running ...")
        sinks = sinks_from_args(args, table=not args.quiet)
        if results_dir is not None:
            sinks.append(CSVSink(results_dir / f"{spec.name}.csv"))
            sinks.append(MarkdownSink(results_dir / f"{spec.name}.md"))
        try:
            result = execute(
                spec, options=options_from_args(args), sinks=sinks
            )
        except Exception as exc:  # surface every failure, run the rest
            failures.append((spec.name, exc))
            _status(f"[{spec.name}] FAILED: {exc}")
            continue
        _status(
            f"[{spec.name}] done in {result.wall_time_s:.2f}s "
            f"({len(result.rows)} rows)"
        )
    if failures:
        _status(f"{len(failures)}/{len(specs)} scenarios failed")
        return 1
    return 0


# ----------------------------------------------------------------------
# Online detection service (repro serve / repro detect / repro loadgen)
# ----------------------------------------------------------------------
def _service_defaults() -> dict[str, float | int]:
    """Full-size preset: field defaults of the one canonical
    ``repro.service.api.ServiceConfig`` (imported lazily so ``repro
    list``/``run`` don't pay the service imports)."""
    import dataclasses

    from repro.service.api import ServiceConfig

    return {
        f.name: f.default
        for f in dataclasses.fields(ServiceConfig)
        if f.default is not dataclasses.MISSING
    }


def _service_smoke() -> dict[str, float | int]:
    """The --smoke preset CI exercises (seconds-scale)."""
    return {
        **_service_defaults(),
        "nodes": 2,
        "t": 2500,
        "blocks": 8,
        "trees": 6,
        "chunk": 200,
    }


def _add_service_options(parser: argparse.ArgumentParser) -> None:
    defaults = _service_defaults()
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="fleet size (independently seeded fault nodes; "
        f"default {defaults['nodes']})",
    )
    parser.add_argument(
        "--t", type=int, default=None,
        help="samples per node; the leading --train-frac trains the "
        f"fleet, the rest replays (default {defaults['t']})",
    )
    parser.add_argument(
        "--segment", default="fault",
        help="labeled segment generator behind every node (default: fault)",
    )
    parser.add_argument(
        "--noise-std", type=float, default=0.0,
        help="additive Gaussian sensor noise as a fraction of each "
        "sensor's std (default 0)",
    )
    parser.add_argument(
        "--blocks", type=int, default=None,
        help=f"signature length l (default {defaults['blocks']})",
    )
    parser.add_argument(
        "--trees", type=int, default=None,
        help="shared fault-classifier forest size "
        f"(default {defaults['trees']})",
    )
    parser.add_argument(
        "--train-frac", type=float, default=None,
        help="leading fraction of each node's history used for "
        f"training (default {defaults['train_frac']})",
    )
    parser.add_argument(
        "--chunk", type=int, default=None,
        help=f"samples per ingested burst (default {defaults['chunk']}; "
        "serve uses 30 unless set)",
    )
    parser.add_argument(
        "--open-after", type=int, default=None,
        help="consecutive faulty windows before an alert opens "
        f"(default {defaults['open_after']})",
    )
    parser.add_argument(
        "--close-after", type=int, default=None,
        help="consecutive healthy windows before an open alert closes "
        f"(default {defaults['close_after']})",
    )
    parser.add_argument(
        "--min-confidence", type=float, default=None,
        help="faulty predictions below this confidence are treated as "
        f"healthy (default {defaults['min_confidence']})",
    )
    parser.add_argument(
        "--top-blocks", type=int, default=None,
        help="deviating signature blocks attributed per opening alert "
        f"(default {defaults['top_blocks']})",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="base seed: node i uses seed+i for generation, and the "
        f"classifier forest uses it directly "
        f"(default {defaults['seed']})",
    )
    parser.add_argument(
        "--healthy-label", type=int, default=None,
        help="integer class treated as 'no fault' "
        f"(default {defaults['healthy_label']}, the fault segment's "
        "healthy class; set explicitly for other --segment choices)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="ingestion shards (thread pool); never changes results",
    )
    parser.add_argument(
        "--backend", choices=("staged", "fused"), default="staged",
        help="tick-path backend: 'staged' (default) or 'fused' "
        "(preallocated zero-allocation arena; exact mode is "
        "byte-identical to staged)",
    )
    parser.add_argument(
        "--mode", choices=("exact", "float32", "quantized"),
        default="exact",
        help="fused signature arithmetic (default exact = float64, "
        "bit-identical; float32/quantized trade accuracy for "
        "throughput/memory and require --backend fused)",
    )
    parser.add_argument(
        "--model", default=None,
        help="fleet model .npz: loaded if present (skips retraining, "
        "validated against this run's geometry), written after "
        "training otherwise",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="content-addressed artifact cache; re-runs replay the "
        "cached .npz segments instead of regenerating",
    )
    parser.add_argument(
        "--no-guard", action="store_true",
        help="disable the input-hardening guard (on by default: "
        "malformed/late/duplicate bursts degrade or quarantine the "
        "offending node instead of crashing, guard events join the "
        "stream and alerts carry the node health state)",
    )
    parser.add_argument(
        "--replicate", type=int, default=None, metavar="N",
        help="replicate the trained fleet to N nodes by reference "
        "(no retraining; how load tests reach thousands of nodes)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale preset (2 nodes, t=2500, 6 trees) used by CI",
    )


def _service_config(args: argparse.Namespace, *, chunk_default=None):
    """The :class:`repro.service.api.ServiceConfig` these flags describe.

    Explicit flags beat the preset (``--smoke`` or full-size);
    ``chunk_default`` overrides the preset chunk when the flag is unset
    (``repro serve``/``loadgen`` default to 30-sample live bursts).
    """
    from repro.service.api import ServiceConfig

    preset = _service_smoke() if args.smoke else _service_defaults()
    params = {}
    for name, fallback in preset.items():
        explicit = getattr(args, name, None)
        params[name] = fallback if explicit is None else explicit
    if args.chunk is None and chunk_default is not None:
        params["chunk"] = chunk_default
    params.update(
        segment=args.segment,
        noise_std=float(args.noise_std),
        backend=args.backend,
        mode=args.mode,
        guard=not args.no_guard,
        model_path=args.model,
        cache_dir=args.cache_dir,
        shards=args.shards,
        replicate=int(args.replicate or 0),
    )
    return ServiceConfig(**params)


def _build_service_setup(args: argparse.Namespace, *, chunk_default=None):
    from repro.service.api import build_context, build_setup

    config = _service_config(args, chunk_default=chunk_default)
    context = build_context(config)
    setup = build_setup(config, context=context)
    return setup, config, context


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table, save_csv
    from repro.scenarios.evaluations import FLEET_DETECT_HEADERS
    from repro.service.alerts import (
        JSONLAlertSink,
        MarkdownAlertSink,
        StreamAlertSink,
    )
    from repro.service.api import replay

    if args.from_store and (args.checkpoint or args.resume):
        _status("error: --from-store and --checkpoint/--resume are exclusive")
        return 2
    setup, config, context = _build_service_setup(args)
    sinks = []
    if args.alerts:
        sinks.append(JSONLAlertSink(args.alerts))
    else:
        sinks.append(StreamAlertSink(sys.stdout))
    if args.markdown:
        sinks.append(MarkdownAlertSink(args.markdown))
    if args.from_store:
        from repro.service.fastreplay import replay_from_store

        outcome = replay_from_store(
            setup,
            args.from_store,
            t0=args.t0,
            t1=args.t1,
            shards=config.shards,
            backend=config.backend,
            mode=config.mode,
            stamp_health=None if config.guard else False,
            sinks=sinks,
            **config.policy_kwargs(),
        )
    else:
        outcome = replay(
            config,
            setup,
            sinks=sinks,
            checkpoint_path=args.checkpoint,
            checkpoint_every=(
                int(args.checkpoint_every) if args.checkpoint else 0
            ),
            resume=args.resume,
            stop_after=args.stop_after,
        )
    row = outcome.row(f"{args.segment}-fleet-{setup.n_nodes}")
    _status(
        format_table(
            FLEET_DETECT_HEADERS, [row], title="Fleet detection replay"
        )
    )
    if args.csv:
        save_csv(args.csv, FLEET_DETECT_HEADERS, [row])
    if args.alerts:
        _status(f"[detect] wrote {outcome.n_alerts} alerts to {args.alerts}")
    if outcome.health is not None:
        states = outcome.health["states"]
        if (
            states.get("degraded")
            or states.get("quarantined")
            or outcome.health["unknown_nodes"]
        ):
            _status(f"[detect] fleet health: {states}")
    if args.checkpoint and args.stop_after is not None:
        _status(
            f"[detect] stopped before tick {args.stop_after}; resume "
            f"with --resume --checkpoint {args.checkpoint}"
        )
    if args.cache_dir:
        stats = context.stats
        _status(
            f"[detect] cache: {stats['segment_hits']} hits, "
            f"{stats['segment_misses']} misses"
        )
    return 0


def _serve_sinks(args: argparse.Namespace) -> list:
    from repro.service.alerts import JSONLAlertSink, StreamAlertSink

    if args.alerts:
        return [JSONLAlertSink(args.alerts)]
    return [StreamAlertSink(sys.stdout)]


#: ``repro serve`` flags consumed by the supervisor itself; stripped
#: from the child argv (value = flag takes an argument).
_SUPERVISOR_FLAGS = {
    "--supervise": False,
    "--max-restarts": True,
    "--restart-backoff": True,
    "--min-uptime": True,
}


def _child_argv(argv: list[str]) -> list[str]:
    """The original argv minus the supervisor-only flags (both
    ``--flag value`` and ``--flag=value`` spellings)."""
    out: list[str] = []
    skip = False
    for token in argv:
        if skip:
            skip = False
            continue
        flag = token.split("=", 1)[0]
        if flag in _SUPERVISOR_FLAGS:
            skip = _SUPERVISOR_FLAGS[flag] and "=" not in token
            continue
        out.append(token)
    return out


def _supervise_serve(args: argparse.Namespace) -> int:
    """Crash-restart loop around a child ``repro serve`` process.

    The child is this exact invocation minus the supervisor flags, so
    a respawn re-binds the same listeners, re-reads the same WAL and
    checkpoint, and recovers to the pre-crash state.  Clean exits and
    Ctrl-C pass through (0 / 130); flag errors (2) are fatal —
    restarting cannot fix them.  Anything else (including ``kill -9``)
    is a crash: respawn with exponential backoff, and trip the
    crash-loop breaker after ``--max-restarts`` consecutive exits
    faster than ``--min-uptime``.
    """
    import signal
    import subprocess
    import time

    cmd = [sys.executable, "-m", "repro", *_child_argv(args.argv)]
    backoff = float(args.restart_backoff)
    min_uptime = float(args.min_uptime)
    quick_crashes = 0
    restarts = 0
    while True:
        started = time.monotonic()
        proc = subprocess.Popen(cmd)
        _status(f"[supervise] child pid {proc.pid} (restarts: {restarts})")
        try:
            rc = proc.wait()
        except KeyboardInterrupt:
            # Pass the interrupt down and give the child its graceful
            # drain (finish the tick, flush alerts, final checkpoint).
            try:
                proc.send_signal(signal.SIGINT)
                proc.wait(timeout=30)
            except (subprocess.TimeoutExpired, OSError):
                proc.kill()
                proc.wait()
            return 130
        uptime = time.monotonic() - started
        if rc == 0:
            return 0
        if rc in (130, -signal.SIGINT):
            return 130
        if rc == 2:
            _status("[supervise] child rejected its flags; not restarting")
            return 2
        if uptime >= min_uptime:
            quick_crashes = 0
        else:
            quick_crashes += 1
            if quick_crashes > int(args.max_restarts):
                _status(
                    f"[supervise] crash loop: {quick_crashes} consecutive "
                    f"exits under {min_uptime:.0f}s; giving up"
                )
                return 1
        delay = min(backoff * (2.0 ** quick_crashes), 30.0)
        restarts += 1
        _status(
            f"[supervise] child exited rc={rc} after {uptime:.1f}s; "
            f"restarting in {delay:.2f}s"
        )
        time.sleep(delay)


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    if args.listen and args.interval:
        # Pacing only drives the in-process replay loop; silently
        # ignoring it would surprise an operator expecting throttling.
        _status(
            "error: --interval applies to in-process serving only and "
            "cannot be combined with --listen"
        )
        return 2
    if args.wal and not args.listen:
        _status(
            "error: --wal journals network ingestion and requires --listen "
            "(in-process serving is already deterministic; use "
            "--checkpoint alone)"
        )
        return 2
    if args.supervise:
        if not args.listen:
            _status("error: --supervise requires --listen")
            return 2
        return _supervise_serve(args)

    from repro.service.api import replay, serve

    pid_file = Path(args.pid_file) if args.pid_file else None
    if pid_file is not None:
        pid_file.parent.mkdir(parents=True, exist_ok=True)
        pid_file.write_text(f"{os.getpid()}\n", encoding="utf-8")
    try:
        return _run_serve(args, replay, serve)
    finally:
        if pid_file is not None:
            try:
                pid_file.unlink(missing_ok=True)
            except OSError:
                pass


def _run_serve(args: argparse.Namespace, replay, serve) -> int:
    setup, config, _ = _build_service_setup(args, chunk_default=30)
    sinks = _serve_sinks(args)
    if args.listen:
        from repro.service.net import BackpressureConfig

        durability = ""
        if args.wal:
            durability = f", wal={args.wal} (fsync={args.wal_fsync})"
        if args.checkpoint:
            durability += f", checkpoint={args.checkpoint}"
        _status(
            f"[serve] {setup.n_nodes} nodes, burst={config.chunk} "
            f"samples, listening on {args.listen} "
            f"(backpressure: {args.backpressure}, queue {args.queue_max}"
            f"{durability})"
        )
        stats = serve(
            config,
            setup,
            listen=args.listen,
            ops=args.ops,
            sinks=tuple(sinks),
            backpressure=BackpressureConfig(
                queue_max=int(args.queue_max), policy=args.backpressure
            ),
            tick_timeout=float(args.tick_timeout),
            exit_on_idle=args.exit_on_idle,
            port_file=args.port_file,
            wal_dir=args.wal,
            wal_fsync=args.wal_fsync,
            checkpoint_path=args.checkpoint,
            checkpoint_every=int(args.checkpoint_every),
        )
        bp = stats["backpressure"]
        wal_note = ""
        if args.wal:
            wal_note = (
                f"; wal {stats['wal_appended']} appended, "
                f"{stats['wal_replayed']} replayed, "
                f"{stats['checkpoints']} checkpoints"
            )
        _status(
            f"[serve] drained: {stats['ticks']} ticks, "
            f"{stats['frames']} frames, {stats['events']} alert events, "
            f"{stats['samples_per_s']:.0f} samples/s "
            f"(p50 {stats['tick_latency_p50_ms']:.2f} ms, "
            f"p99 {stats['tick_latency_p99_ms']:.2f} ms; "
            f"dropped {bp['dropped']}, coalesced {bp['coalesced']}, "
            f"late {bp['late_dropped']}{wal_note})"
        )
        return 0
    horizon = max(m.shape[1] for m in setup.eval_data.values())
    _status(
        f"[serve] {setup.n_nodes} nodes, burst={config.chunk} samples, "
        f"{horizon} samples queued (Ctrl-C to stop)"
    )
    # Same loop as `repro detect`, with live pacing and bounded memory
    # (no prediction/alert history is retained unless checkpointing —
    # serving is about the event stream, not the replay score).
    outcome = replay(
        config,
        setup,
        sinks=sinks,
        interval=float(args.interval),
        record_history=bool(args.checkpoint),
        checkpoint_path=args.checkpoint,
        checkpoint_every=(
            int(args.checkpoint_every) if args.checkpoint else 0
        ),
    )
    # outcome.events is empty in serving mode (nothing is retained);
    # the counts are always populated.  n_events = opens + closes.
    closes = outcome.n_events - outcome.n_alerts
    _status(
        f"[serve] drained: {outcome.n_windows} windows classified, "
        f"{outcome.n_events} alert events, "
        f"{outcome.n_alerts - closes} alert(s) still open"
    )
    if outcome.interrupted:
        # The replay loop already finished the in-flight tick, flushed
        # every open alert into the sinks and wrote a final checkpoint;
        # exit with the conventional Ctrl-C status via console_main.
        if args.checkpoint:
            _status(f"[serve] interrupted; checkpoint at {args.checkpoint}")
        raise KeyboardInterrupt
    return 0


def _port_file_address(path: str | Path, host: str = "127.0.0.1"):
    """Address callable re-reading a ``--port-file`` on every connect
    attempt — a supervised server restart lands on a fresh ephemeral
    port, and the next reconnect follows it there.  A missing or
    still-empty file raises (``OSError``/``ValueError``), which the
    connect backoff treats as retryable."""
    path = Path(path)

    def resolve() -> tuple[str, int]:
        return (host, int(path.read_text(encoding="utf-8").strip()))

    return resolve


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service.net import loadgen, parse_address

    if bool(args.connect) == bool(args.port_file):
        _status("error: exactly one of --connect/--port-file is required")
        return 2
    setup, config, _ = _build_service_setup(args, chunk_default=30)
    if args.port_file:
        address = _port_file_address(args.port_file)
        target = f"port-file {args.port_file}"
    else:
        address = parse_address(args.connect)
        target = args.connect
    _status(
        f"[loadgen] {setup.n_nodes} nodes -> {target} "
        f"({args.format} frames, burst={config.chunk}"
        f"{', resume' if args.resume else ''})"
    )
    stats = loadgen(
        setup,
        address,
        chunk=config.chunk,
        fmt=args.format,
        interval=float(args.interval),
        max_ticks=args.max_ticks,
        send_eof=not args.no_eof,
        resume=args.resume,
        connect_timeout=float(args.connect_timeout),
        ack_timeout=float(args.ack_timeout),
        total_timeout=args.total_timeout,
    )
    rate = stats["bytes"] / stats["seconds"] / 1e6 if stats["seconds"] else 0.0
    resume_note = ""
    if args.resume:
        resume_note = (
            f"; {stats['acked_ticks']} ticks acked, "
            f"{stats['reconnects']} reconnects, "
            f"{stats['resent_frames']} frames resent"
        )
    _status(
        f"[loadgen] sent {stats['frames']} frames / {stats['ticks']} ticks "
        f"({stats['bytes'] / 1e6:.1f} MB) in {stats['seconds']:.2f}s "
        f"({rate:.0f} MB/s{resume_note})"
    )
    return 0


def _cmd_netchaos(args: argparse.Namespace) -> int:
    import time

    from repro.service.net import parse_address
    from repro.service.netchaos import ChaosProxy, NetChaosConfig

    if bool(args.upstream) == bool(args.upstream_port_file):
        _status(
            "error: exactly one of --upstream/--upstream-port-file is "
            "required"
        )
        return 2
    if args.upstream:
        upstream = parse_address(args.upstream)
        origin = args.upstream
    else:
        upstream = _port_file_address(args.upstream_port_file)
        origin = f"port-file {args.upstream_port_file}"
    host, port = parse_address(args.listen)
    config = NetChaosConfig(
        seed=int(args.seed or 0),
        latency_ms=float(args.latency_ms),
        jitter_ms=float(args.jitter_ms),
        corrupt_per_mb=float(args.corrupt_per_mb),
        reset_per_mb=float(args.reset_per_mb),
        truncate_per_mb=float(args.truncate_per_mb),
        partition_per_mb=float(args.partition_per_mb),
        partition_ms=float(args.partition_ms),
    )
    proxy = ChaosProxy(
        upstream, config, host=host, port=port, port_file=args.port_file
    )
    proxy.start()
    _status(
        f"[netchaos] {host}:{proxy.port} -> {origin} "
        f"(seed {config.seed}; Ctrl-C to stop)"
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        stats = proxy.stop()
        _status(
            f"[netchaos] forwarded {stats['bytes_out']} of "
            f"{stats['bytes_in']} bytes over {stats['connections']} "
            f"connection(s): {stats['corrupted']} corrupted, "
            f"{stats['resets']} resets, {stats['truncated_bytes']} bytes "
            f"truncated, {stats['partitions']} partitions"
        )
        raise


# ----------------------------------------------------------------------
# Columnar telemetry store (repro store ...)
# ----------------------------------------------------------------------
def _cmd_store_record(args: argparse.Namespace) -> int:
    from repro.service.fastreplay import record_fleet

    setup, config, _ = _build_service_setup(args)
    store = record_fleet(
        setup,
        args.root,
        partition_ticks=int(args.partition_ticks),
        chunk=config.chunk,
        guarded=config.guard,
    )
    _status(
        f"[store] recorded {store.ticks} ticks x {len(store.paths)} nodes "
        f"into {len(store.partitions)} partition(s) at {store.root} "
        f"({store.nbytes / 1e6:.1f} MB)"
    )
    return 0


def _cmd_store_stat(args: argparse.Namespace) -> int:
    import json

    from repro.monitoring.telestore import TeleStore

    print(json.dumps(TeleStore(args.root).stat(), indent=2, sort_keys=True))
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.monitoring.telestore import TeleStore, TeleStoreError

    store = TeleStore(args.root)
    try:
        checked = store.verify()
    except TeleStoreError as exc:
        _status(f"error: {exc}")
        return 1
    _status(f"[store] verified {checked} partition(s): all content hashes ok")
    return 0


def _cmd_store_compact(args: argparse.Namespace) -> int:
    from repro.monitoring.telestore import TeleStore

    store = TeleStore(args.root)
    merged = store.compact(args.target_ticks)
    _status(
        f"[store] compacted {merged} partition(s) away; "
        f"{len(store.partitions)} remain"
    )
    return 0


def _cmd_store_prune(args: argparse.Namespace) -> int:
    from repro.monitoring.telestore import RetentionError, TeleStore

    store = TeleStore(args.root)
    try:
        dropped = store.prune(
            keep_last=int(args.keep_last), checkpoints=args.checkpoint or ()
        )
    except RetentionError as exc:
        _status(f"error: {exc}")
        return 1
    _status(
        f"[store] pruned {dropped} partition(s); "
        f"[{store.t0}, {store.t1}) retained"
    )
    return 0


# ----------------------------------------------------------------------
# Benchmark runner (repro bench)
# ----------------------------------------------------------------------
#: The benchmark files that refresh ``results/*.csv`` + ``BENCH_*.json``.
BENCH_SUITES: dict[str, str] = {
    "engine": "test_engine_scaling.py",
    "ml": "test_ml_scaling.py",
    "scenarios": "test_scenario_cache.py",
    "service": "test_service_scaling.py",
    "datagen": "test_datagen_scaling.py",
    "tick": "test_tick_hotpath.py",
    "store": "test_store_scaling.py",
    "net": "test_net_serve.py",
}


def _repo_root() -> Path:
    """The checkout root (the parent of ``src/``); benchmarks live there."""
    return Path(__file__).resolve().parents[2]


def _bench_command(args: argparse.Namespace) -> list[str]:
    """The pytest invocation for the requested benchmark selection."""
    if args.all:
        targets = ["benchmarks"]
    else:
        suites = args.suite or sorted(BENCH_SUITES)
        targets = [str(Path("benchmarks") / BENCH_SUITES[s]) for s in suites]
    cmd = [sys.executable, "-m", "pytest", *targets, "-m", "slow", "-q"]
    if args.filter:
        cmd += ["-k", args.filter]
    return cmd


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the slow-marked benchmark suite, refreshing the recorded
    ``results/*.csv`` tables and ``BENCH_*.json`` summaries that
    ``tests/test_bench_guard.py`` enforces floors on.

    Runs in a subprocess so the ``REPRO_BENCH_SCALE``/``REPRO_BENCH_TREES``
    knobs are picked up at interpreter start, exactly as a manual
    ``pytest benchmarks -m slow`` run would.
    """
    import os
    import subprocess

    if args.all and args.suite:
        _status("error: --all and --suite are mutually exclusive")
        return 2
    root = _repo_root()
    if not (root / "benchmarks").is_dir():
        _status(
            "error: benchmarks/ not found next to src/ — `repro bench` "
            "runs from a source checkout"
        )
        return 2
    env = os.environ.copy()
    env["PYTHONPATH"] = str(root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if args.scale is not None:
        env["REPRO_BENCH_SCALE"] = str(args.scale)
    if args.trees is not None:
        env["REPRO_BENCH_TREES"] = str(args.trees)
    cmd = _bench_command(args)
    _status(f"[bench] {' '.join(cmd)}")
    rc = subprocess.call(cmd, cwd=root, env=env)
    if rc == 0:
        _status(
            "[bench] refreshed results/*.csv + BENCH_*.json "
            "(guarded by tests/test_bench_guard.py)"
        )
    return rc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative scenario runner for the CS reproduction "
        "(paper figures/tables plus extended coverage).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show registered scenarios")
    p_list.add_argument("--tag", default=None, help="filter by tag")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one scenario")
    p_run.add_argument("name", help="registered scenario name")
    add_shared_options(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser("run-all", help="run every registered scenario")
    p_all.add_argument("--tag", default=None, help="filter by tag")
    p_all.add_argument(
        "--results-dir",
        default=None,
        help="write per-scenario CSV + markdown summaries here",
    )
    p_all.add_argument(
        "--quiet", action="store_true", help="suppress stdout tables"
    )
    add_shared_options(
        p_all, "--seed", "--repeats", "--scale", "--trees", "--smoke",
        "--cache-dir", "--out",
    )
    p_all.set_defaults(func=_cmd_run_all)

    p_detect = sub.add_parser(
        "detect",
        help="replay a (cached) fault fleet through the online "
        "detection service",
    )
    _add_service_options(p_detect)
    p_detect.add_argument(
        "--alerts", default=None,
        help="write the alert event stream as JSON lines here "
        "(default: stdout); byte-identical across processes",
    )
    p_detect.add_argument(
        "--csv", default=None,
        help="also write the scored summary row as CSV",
    )
    p_detect.add_argument(
        "--markdown", default=None,
        help="also write a markdown alert summary table",
    )
    p_detect.add_argument(
        "--checkpoint", default=None,
        help="checkpoint the full detector state to this .npz while "
        "replaying; with --resume, restore it and replay only the "
        "remaining ticks (byte-identical alert stream to an "
        "uninterrupted run)",
    )
    p_detect.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="ticks between checkpoints (default 1; needs --checkpoint)",
    )
    p_detect.add_argument(
        "--resume", action="store_true",
        help="restore --checkpoint before replaying (typed error on "
        "lineage/geometry/knob mismatch, never silent drift)",
    )
    p_detect.add_argument(
        "--stop-after", type=int, default=None,
        help="stop before processing this tick index (simulated crash "
        "for checkpoint drills)",
    )
    p_detect.add_argument(
        "--from-store", default=None, metavar="DIR",
        help="replay a recorded telemetry store (see `repro store "
        "record`) instead of the live feed: partition-sized blocks "
        "stream into the detector at max speed, alert JSONL "
        "byte-identical to live ingestion of the same window",
    )
    p_detect.add_argument(
        "--t0", type=int, default=None,
        help="first store tick to replay (default: store start; scored "
        "windows need --t0 aligned to the window stride)",
    )
    p_detect.add_argument(
        "--t1", type=int, default=None,
        help="replay up to this store tick, exclusive (default: store end)",
    )
    p_detect.set_defaults(func=_cmd_detect)

    p_serve = sub.add_parser(
        "serve",
        help="serve the fleet live: in-process feed by default, or a "
        "TCP ingestion server (+ HTTP ops API) with --listen",
    )
    _add_service_options(p_serve)
    p_serve.add_argument(
        "--interval", type=float, default=0.0,
        help="seconds to pause between ingested bursts (in-process "
        "mode; default 0 = as fast as possible)",
    )
    p_serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="accept repro-ticks/v1 frames (newline-JSON or binary) on "
        "this TCP address instead of generating the feed in-process "
        "(port 0 = ephemeral; see --port-file)",
    )
    p_serve.add_argument(
        "--ops", default=None, metavar="HOST:PORT",
        help="also serve the HTTP ops API here (/health /fleet /alerts "
        "/alerts/<id>/ack|suppress /stats; needs --listen)",
    )
    p_serve.add_argument(
        "--alerts", default=None,
        help="write alert events as JSON lines here instead of stdout "
        "(byte-identical to `repro detect` of the same flags)",
    )
    p_serve.add_argument(
        "--queue-max", type=int, default=1024,
        help="per-node ingress queue bound (default 1024 bursts)",
    )
    p_serve.add_argument(
        "--backpressure", choices=("drop-oldest", "coalesce"),
        default="drop-oldest",
        help="full-queue policy: drop-oldest evicts the stalest queued "
        "burst, coalesce replaces the newest (default drop-oldest)",
    )
    p_serve.add_argument(
        "--tick-timeout", type=float, default=5.0,
        help="seconds the tick barrier waits for a complete fleet "
        "before processing a partial burst (default 5)",
    )
    p_serve.add_argument(
        "--exit-on-idle", action="store_true",
        help="stop once every connection has closed and the queues "
        "drained (CI / load-test mode)",
    )
    p_serve.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound ingestion port here once listening "
        "(how scripts discover a --listen host:0 port; with --ops the "
        "bound ops port lands in PATH.ops)",
    )
    p_serve.add_argument(
        "--checkpoint", default=None,
        help="checkpoint detector state to this .npz; with --listen the "
        "snapshot also carries the server's routing state and WAL "
        "position, taken between ticks every --checkpoint-every ticks; "
        "Ctrl-C flushes open alerts and writes a final checkpoint "
        "before exiting 130",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="ticks between checkpoints (default 1; needs --checkpoint)",
    )
    p_serve.add_argument(
        "--wal", default=None, metavar="DIR",
        help="write-ahead repro-wal/v1 frame journal directory (needs "
        "--listen): every accepted frame is journaled before "
        "processing, and on restart the journal replays from the last "
        "checkpoint watermark — kill -9 mid-tick, restart, and the "
        "alert JSONL is byte-identical to an uninterrupted run",
    )
    p_serve.add_argument(
        "--wal-fsync", choices=("always", "tick", "off"), default="tick",
        help="journal durability: fsync per record (always), per "
        "processed tick (tick, default), or leave flushing to the OS "
        "(off — survives process crashes, not machine crashes)",
    )
    p_serve.add_argument(
        "--pid-file", default=None, metavar="PATH",
        help="write this process's pid here (rewritten by each "
        "supervised restart; removed on clean exit) so drills and "
        "scripts can target kill signals",
    )
    p_serve.add_argument(
        "--supervise", action="store_true",
        help="run serving in a child process and restart it on crash "
        "with exponential backoff; with --wal/--checkpoint each respawn "
        "recovers to the pre-crash state (clean exit and Ctrl-C pass "
        "through)",
    )
    p_serve.add_argument(
        "--max-restarts", type=int, default=5,
        help="crash-loop breaker: give up after this many consecutive "
        "child exits faster than --min-uptime (default 5)",
    )
    p_serve.add_argument(
        "--restart-backoff", type=float, default=0.5,
        help="base seconds between restarts, doubled per consecutive "
        "quick crash, capped at 30 (default 0.5)",
    )
    p_serve.add_argument(
        "--min-uptime", type=float, default=5.0,
        help="seconds a child must stay up to reset the crash-loop "
        "counter (default 5)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive a `repro serve --listen` server with the exact "
        "deterministic feed `repro detect` would replay",
    )
    _add_service_options(p_loadgen)
    p_loadgen.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="ingestion address of the running server (or use "
        "--port-file)",
    )
    p_loadgen.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="read the server's bound port from this file (the serve "
        "--port-file path), re-read on every reconnect so a supervised "
        "restart's fresh ephemeral port is followed automatically",
    )
    p_loadgen.add_argument(
        "--format", choices=("binary", "json"), default="binary",
        help="frame encoding (default binary; json exercises the "
        "newline-JSON path)",
    )
    p_loadgen.add_argument(
        "--interval", type=float, default=0.0,
        help="seconds to pause between ticks (default 0 = full speed)",
    )
    p_loadgen.add_argument(
        "--max-ticks", type=int, default=None,
        help="stop after this many ticks (default: the full horizon)",
    )
    p_loadgen.add_argument(
        "--no-eof", action="store_true",
        help="skip the trailing {\"op\": \"eof\"} control frame",
    )
    p_loadgen.add_argument(
        "--resume", action="store_true",
        help="crash-tolerant mode: subscribe to per-tick acks and, on "
        "reset/refused/stall, reconnect with backoff and resend from "
        "the last acked tick (eof only after everything is acked)",
    )
    p_loadgen.add_argument(
        "--connect-timeout", type=float, default=30.0,
        help="seconds of capped-backoff connection retries before "
        "giving up (default 30; also covers the port-file race at "
        "server startup)",
    )
    p_loadgen.add_argument(
        "--ack-timeout", type=float, default=5.0,
        help="seconds without ack progress before --resume tears the "
        "connection down and resends (default 5)",
    )
    p_loadgen.add_argument(
        "--total-timeout", type=float, default=None,
        help="overall wall-clock budget; exceeded = TimeoutError "
        "(default: none)",
    )
    p_loadgen.set_defaults(func=_cmd_loadgen)

    p_chaos = sub.add_parser(
        "netchaos",
        help="seeded TCP chaos proxy between loadgen and a serve "
        "--listen server (latency, resets, partitions, corruption, "
        "truncation — deterministic per seed)",
    )
    p_chaos.add_argument(
        "--listen", required=True, metavar="HOST:PORT",
        help="address clients connect to (port 0 = ephemeral; see "
        "--port-file)",
    )
    p_chaos.add_argument(
        "--upstream", default=None, metavar="HOST:PORT",
        help="the real server's ingestion address",
    )
    p_chaos.add_argument(
        "--upstream-port-file", default=None, metavar="PATH",
        help="read the upstream port from this file per connection "
        "(follows supervised server restarts; or use --upstream)",
    )
    p_chaos.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the proxy's bound port here once listening",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0,
        help="fault-schedule seed: plans are a pure function of "
        "(seed, connection, byte offset) (default 0)",
    )
    p_chaos.add_argument(
        "--latency-ms", type=float, default=0.0,
        help="fixed added latency per 4 KiB span (default 0)",
    )
    p_chaos.add_argument(
        "--jitter-ms", type=float, default=0.0,
        help="additional uniform random latency per span (default 0)",
    )
    p_chaos.add_argument(
        "--corrupt-per-mb", type=float, default=0.0,
        help="expected single-byte XOR corruptions per forwarded MB "
        "(default 0)",
    )
    p_chaos.add_argument(
        "--reset-per-mb", type=float, default=0.0,
        help="expected hard connection resets (RST) per forwarded MB "
        "(default 0)",
    )
    p_chaos.add_argument(
        "--truncate-per-mb", type=float, default=0.0,
        help="expected span truncations (silently dropped bytes) per "
        "forwarded MB (default 0)",
    )
    p_chaos.add_argument(
        "--partition-per-mb", type=float, default=0.0,
        help="expected short partitions (stalls) per forwarded MB "
        "(default 0)",
    )
    p_chaos.add_argument(
        "--partition-ms", type=float, default=50.0,
        help="stall length per partition event (default 50 ms)",
    )
    p_chaos.set_defaults(func=_cmd_netchaos)

    p_store = sub.add_parser(
        "store",
        help="record and manage the columnar telemetry store "
        "(repro-telestore/v1)",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_record = store_sub.add_parser(
        "record",
        help="record a fleet's held-out feed into a new store directory",
    )
    p_record.add_argument("root", help="store directory to create")
    _add_service_options(p_record)
    p_record.add_argument(
        "--partition-ticks", type=int, default=1024,
        help="ticks per immutable partition file (default 1024)",
    )
    p_record.set_defaults(func=_cmd_store_record)

    p_stat = store_sub.add_parser(
        "stat", help="print the store manifest + partition index as JSON"
    )
    p_stat.add_argument("root", help="store directory")
    p_stat.set_defaults(func=_cmd_store_stat)

    p_verify = store_sub.add_parser(
        "verify",
        help="recompute every partition's SHA-256 content hash against "
        "the index (catches bit rot and truncation)",
    )
    p_verify.add_argument("root", help="store directory")
    p_verify.set_defaults(func=_cmd_store_verify)

    p_compact = store_sub.add_parser(
        "compact",
        help="merge adjacent small partitions (crash-safe: new files "
        "first, index flip second, unlink last)",
    )
    p_compact.add_argument("root", help="store directory")
    p_compact.add_argument(
        "--target-ticks", type=int, default=None,
        help="merged partition size (default: the store's partition_ticks)",
    )
    p_compact.set_defaults(func=_cmd_store_compact)

    p_prune = store_sub.add_parser(
        "prune",
        help="drop the oldest partitions; refuses (typed error) to drop "
        "data a detector checkpoint still references",
    )
    p_prune.add_argument("root", help="store directory")
    p_prune.add_argument(
        "--keep-last", type=int, required=True,
        help="number of newest partitions to retain",
    )
    p_prune.add_argument(
        "--checkpoint", action="append", default=None,
        help="detector checkpoint .npz whose resume point must stay "
        "replayable (repeatable; <root>/checkpoints/*.npz are always "
        "respected)",
    )
    p_prune.set_defaults(func=_cmd_store_prune)

    p_bench = sub.add_parser(
        "bench",
        help="run the slow-marked benchmark suite and refresh "
        "results/*.csv + BENCH_*.json",
    )
    p_bench.add_argument(
        "--suite", action="append", choices=sorted(BENCH_SUITES),
        help="benchmark suite(s) to run (repeatable; default: all of "
        f"{', '.join(sorted(BENCH_SUITES))})",
    )
    p_bench.add_argument(
        "--all", action="store_true",
        help="run every file under benchmarks/ (figure/table "
        "reproductions included), not just the recorded-speedup suites",
    )
    p_bench.add_argument(
        "--filter", "-k", default=None,
        help="pytest -k expression to select individual benchmarks",
    )
    p_bench.add_argument(
        "--scale", type=float, default=None,
        help="REPRO_BENCH_SCALE for the run (enlarges datasets toward "
        "paper sizes)",
    )
    p_bench.add_argument(
        "--trees", type=int, default=None,
        help="REPRO_BENCH_TREES for the run (forest size; paper uses 50)",
    )
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(raw)
    # The supervisor respawns this exact invocation minus its own flags.
    args.argv = raw
    return args.func(args)


def console_main() -> None:  # pragma: no cover - setuptools entry point
    import os

    try:
        sys.exit(main())
    except KeyboardInterrupt:
        # Ctrl-C (e.g. stopping `repro serve`) is a normal way to leave;
        # exit with the conventional 128 + SIGINT status instead of a
        # traceback.
        sys.exit(130)
    except BrokenPipeError:
        # Piping into `head` etc. closes stdout early; exit quietly with
        # the conventional 128 + SIGPIPE status instead of a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)

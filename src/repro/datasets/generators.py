"""The five HPC-ODA segment generators and windowed ML dataset builders.

Each ``generate_*`` function synthesizes one segment as a
:class:`SegmentData` — a list of monitored components (compute nodes or
racks), each with its sensor matrix, per-sample labels or regression
target series, and sensor metadata.  :func:`build_ml_dataset` then turns a
segment plus a signature method into the flat ``(X, y)`` feature sets the
paper's cross-validation experiments consume.

Default sizes are scaled down from Table I (which totals hundreds of
thousands of feature sets) to keep laptop runtimes in minutes; the
``scale`` argument restores larger datasets when desired.  The *structure*
(node counts, sensors per node, ``wl``/``ws``, label sets) follows
Table I exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines.base import SignatureMethod
from repro.datasets.faults import FAULTS, fault_names
from repro.datasets.schema import ARCHITECTURES, SegmentSpec, get_segment_spec
from repro.datasets.sensors import (
    node_sensor_bank,
    rack_sensor_bank,
    render_batch,
)
from repro.engine.scan import (
    damped_oscillation_scan,
    ema_scan,
    first_order_affine_scan,
)
from repro.datasets.windows import (
    future_mean_target,
    window_majority_labels,
)
from repro.datasets.workloads import (
    APPLICATIONS,
    CHANNELS,
    IDLE,
    application_names,
    build_schedule,
)

__all__ = [
    "DATAGEN_VERSION",
    "ComponentData",
    "SegmentData",
    "WindowedDataset",
    "generate_fault",
    "generate_application",
    "generate_power",
    "generate_infrastructure",
    "generate_cross_architecture",
    "generate_segment",
    "build_ml_dataset",
]

#: Version of the generation *numerics*.  The batched scan engine keeps
#: per-seed RNG draw order (labels, schedules and fault episodes are
#: bit-identical to ``datasets/_seed_reference.py``) but evaluates the
#: recurrences in chunked cumulative form, so float results agree only
#: to ``rtol <= 1e-10`` — close enough for every experiment, too far for
#: content-addressed artifacts to mix.  The version participates in
#: ``DatasetRecipe.cache_dict()``: bumping it retires stale cached
#: artifacts instead of silently blending numerics across engines.
DATAGEN_VERSION = 2


# ----------------------------------------------------------------------
# Data containers
# ----------------------------------------------------------------------
@dataclass
class ComponentData:
    """Monitoring data of one component (compute node or rack)."""

    name: str
    matrix: np.ndarray                  # (n_sensors, t)
    sensor_names: tuple[str, ...]
    sensor_groups: tuple[str, ...]
    labels: np.ndarray | None = None    # (t,) int class per sample
    target: np.ndarray | None = None    # (t,) regression target series
    arch: str = "skylake"

    @property
    def n_sensors(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def t(self) -> int:
        return int(self.matrix.shape[1])


@dataclass
class SegmentData:
    """One synthesized HPC-ODA segment."""

    spec: SegmentSpec
    components: list[ComponentData]
    label_names: tuple[str, ...] = ()
    seed: int | None = None

    @property
    def n_components(self) -> int:
        return len(self.components)

    @property
    def total_data_points(self) -> int:
        return sum(c.matrix.size for c in self.components)

    def stacked_matrix(self) -> np.ndarray:
        """All components' sensors stacked row-wise (for visualization).

        Components must share the time axis length; this is how the
        paper's Figure 2/6 heatmaps combine 16 nodes into ~800 rows.
        """
        lengths = {c.t for c in self.components}
        if len(lengths) != 1:
            raise ValueError("components have unequal lengths; cannot stack")
        return np.concatenate([c.matrix for c in self.components], axis=0)

    def stacked_sensor_names(self) -> tuple[str, ...]:
        names: list[str] = []
        for c in self.components:
            names.extend(f"{c.name}.{s}" for s in c.sensor_names)
        return tuple(names)


@dataclass
class WindowedDataset:
    """Flat ML dataset built from a segment with one signature method."""

    X: np.ndarray                        # (num_windows, n_features)
    y: np.ndarray                        # (num_windows,)
    task: str                            # "classification" | "regression"
    label_names: tuple[str, ...] = ()
    groups: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    generation_time_s: float = 0.0
    signature_size: int = 0

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])


# ----------------------------------------------------------------------
# Latent synthesis helpers
# ----------------------------------------------------------------------
def _concat_schedule_latents(
    schedule: list[tuple[str, int, int]], rng: np.random.Generator
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Latent channels + integer run index per sample for a schedule."""
    pieces: dict[str, list[np.ndarray]] = {ch: [] for ch in CHANNELS}
    run_idx = []
    for k, (app, config, length) in enumerate(schedule):
        model = IDLE if app == "idle" else APPLICATIONS[app]
        latent = model.latent(length, config, rng)
        for ch in CHANNELS:
            pieces[ch].append(latent[ch])
        run_idx.append(np.full(length, k, dtype=np.intp))
    return (
        {ch: np.concatenate(parts) for ch, parts in pieces.items()},
        np.concatenate(run_idx),
    )


def _labels_from_schedule(
    schedule: list[tuple[str, int, int]],
    run_idx: np.ndarray,
    label_names: tuple[str, ...],
) -> np.ndarray:
    """Integer label per sample from a schedule + run index array."""
    index = {name: i for i, name in enumerate(label_names)}
    per_run = np.array([index[app] for app, _, _ in schedule], dtype=np.intp)
    return per_run[run_idx]


def _ema(x: np.ndarray, samples: int) -> np.ndarray:
    """Exponential moving average with time constant ``samples``."""
    return ema_scan(x, samples)


def _damped_oscillation(
    t: int,
    rng: np.random.Generator,
    *,
    stiffness: float = 0.03,
    damping: float = 0.06,
    drive: float = 0.01,
) -> np.ndarray:
    """Noise-driven damped oscillator: structure with exploitable momentum.

    The velocity state persists over several samples, so backward
    differences of the observed position genuinely help predict the next
    few samples — the property that makes the CS imaginary components
    valuable for the Power segment.  The 2x2 state recurrence is
    evaluated as a diagonalized matrix scan (one RNG draw, same stream).
    """
    kicks = drive * rng.standard_normal(t)
    return damped_oscillation_scan(kicks, stiffness=stiffness, damping=damping)


def _ou_process(
    t: int,
    rng: np.random.Generator,
    *,
    mean: float = 0.5,
    theta: float = 0.02,
    sigma: float = 0.03,
    lo: float = 0.0,
    hi: float = 1.0,
) -> np.ndarray:
    """Mean-reverting (Ornstein-Uhlenbeck-style) random process.

    Used for the Infrastructure segment, where the aggregate rack load
    drifts slowly and "we have no knowledge of the specific applications".
    One RNG draw feeds a first-order affine scan.
    """
    noise = sigma * rng.standard_normal(t)
    x = first_order_affine_scan(1.0 - theta, theta * mean + noise, mean)
    return np.clip(x, lo, hi)


# ----------------------------------------------------------------------
# Segment generators
# ----------------------------------------------------------------------
def generate_fault(
    seed: int | None = 0, *, t: int = 20000, scale: float = 1.0
) -> SegmentData:
    """Fault segment: one node, 128 sensors, 8 faults + healthy labels.

    Single-node applications run back-to-back; fault episodes of random
    duration are injected on top, cycling through all eight fault types
    and both intensity settings.
    """
    spec = get_segment_spec("fault")
    t = max(int(t * scale), 4 * spec.wl)
    rng = np.random.default_rng(seed)
    schedule = build_schedule(t, rng, min_run=300, max_run=600)
    latent, _run_idx = _concat_schedule_latents(schedule, rng)

    label_names = fault_names(include_healthy=True)
    labels = np.zeros(t, dtype=np.intp)  # 0 == healthy

    # Fault episodes: alternating active/quiet intervals, cycling through
    # fault types and settings so every class is represented.
    episodes: list[tuple[int, int, int, int]] = []  # (fault_id, setting, start, stop)
    cursor = int(rng.integers(spec.wl, 3 * spec.wl))
    k = 0
    while cursor < t - spec.wl:
        fault_id = k % len(FAULTS)
        setting = (k // len(FAULTS)) % 2
        duration = int(rng.integers(150, 350))
        stop = min(cursor + duration, t)
        episodes.append((fault_id, setting, cursor, stop))
        labels[cursor:stop] = fault_id + 1
        FAULTS[fault_id].apply_channels(latent, cursor, stop, setting, rng)
        cursor = stop + int(rng.integers(100, 300))
        k += 1

    bank = node_sensor_bank(spec.sensors, rng, arch="broadwell", n_cores=16)
    matrix = bank.render(latent, rng)
    groups = {g: bank.indices_of_group(g) for g in set(bank.groups)}
    for fault_id, setting, start, stop in episodes:
        FAULTS[fault_id].apply_sensors(matrix, groups, start, stop, setting, rng)

    component = ComponentData(
        name="node0",
        matrix=matrix,
        sensor_names=bank.names,
        sensor_groups=bank.groups,
        labels=labels,
        arch="broadwell",
    )
    return SegmentData(spec, [component], label_names=label_names, seed=seed)


def generate_application(
    seed: int | None = 0,
    *,
    t: int = 1200,
    nodes: int | None = None,
    scale: float = 1.0,
) -> SegmentData:
    """Application segment: 16 nodes, 52 sensors each, 6 apps + idle.

    One shared MPI schedule drives all nodes (homogeneous parallel codes),
    giving the strong cross-node correlations the CS ordering exploits;
    per-node gain jitter models rank imbalance.
    """
    spec = get_segment_spec("application")
    t = max(int(t * scale), 4 * spec.wl)
    n_nodes = spec.nodes if nodes is None else int(nodes)
    rng = np.random.default_rng(seed)
    schedule = build_schedule(t, rng, min_run=250, max_run=500)
    latent, run_idx = _concat_schedule_latents(schedule, rng)
    label_names = application_names(include_idle=False) + ("idle",)
    labels = _labels_from_schedule(schedule, run_idx, label_names)

    # Per-node RNG draws happen node by node in the exact order of the
    # sequential path (gain, per-channel jitter, bank composition, render
    # noise); the arithmetic then runs once for the whole node plane.
    banks, node_latents, noises = [], [], []
    for node in range(n_nodes):
        node_rng = np.random.default_rng(
            np.random.SeedSequence([0 if seed is None else seed, 17, node])
        )
        gain = node_rng.uniform(0.92, 1.08)
        node_latents.append(
            {
                ch: np.clip(
                    arr * gain + node_rng.normal(0.0, 0.01, size=arr.shape),
                    0.0,
                    1.6,
                )
                for ch, arr in latent.items()
            }
        )
        bank = node_sensor_bank(spec.sensors, node_rng, arch="skylake", n_cores=8)
        banks.append(bank)
        noises.append(node_rng.standard_normal((len(bank), t)))
    components = [
        ComponentData(
            name=f"node{node:02d}",
            matrix=matrix,
            sensor_names=bank.names,
            sensor_groups=bank.groups,
            labels=labels.copy(),
            arch="skylake",
        )
        for node, (bank, matrix) in enumerate(
            zip(banks, render_batch(banks, node_latents, noises))
        )
    ]
    return SegmentData(spec, components, label_names=label_names, seed=seed)


def generate_power(
    seed: int | None = 0, *, t: int = 8000, scale: float = 1.0
) -> SegmentData:
    """Power segment: one node, 47 sensors (node + core level), power target.

    OpenMP applications under two input configurations; the regression
    target is the node power reading, predicted ``horizon`` samples ahead
    (the mean of the next 3 samples at 100 ms sampling).
    """
    spec = get_segment_spec("power")
    t = max(int(t * scale), 4 * (spec.wl + spec.horizon))
    rng = np.random.default_rng(seed)
    # Two input configurations only for this segment (Section II-B.3).
    schedule = [
        (app, cfg, length)
        for (app, cfg, length) in build_schedule(t, rng, min_run=250, max_run=500)
        for cfg in (cfg % 2,)
    ]
    latent, _ = _concat_schedule_latents(schedule, rng)
    bank = node_sensor_bank(
        spec.sensors, rng, arch="knights-landing", n_cores=8
    )
    matrix = bank.render(latent, rng)
    # Short-term power dynamics (turbo/RAPL wobble): a lightly damped
    # oscillation carried only by the power sensors themselves.  It gives
    # the target fine-grained structure that (a) coarse block averaging
    # dilutes — so the ML score improves with l — and (b) has momentum, so
    # the signature's derivative (imaginary) components are informative,
    # matching the Power observations of Figures 3c and 4.
    wobble = _damped_oscillation(t, rng, stiffness=0.03, damping=0.06, drive=0.012)
    names = list(bank.names)
    power_row = names.index("power_node")
    dram_row = names.index("power_dram")
    matrix[power_row] += wobble
    matrix[dram_row] += 0.6 * wobble
    np.maximum(matrix, 0.0, out=matrix)
    component = ComponentData(
        name="node0",
        matrix=matrix,
        sensor_names=bank.names,
        sensor_groups=bank.groups,
        target=matrix[power_row].copy(),
        arch="knights-landing",
    )
    return SegmentData(spec, [component], seed=seed)


def generate_infrastructure(
    seed: int | None = 0,
    *,
    t: int = 1400,
    racks: int = 8,
    scale: float = 1.0,
) -> SegmentData:
    """Infrastructure segment: rack-level cooling/power, heat target.

    Each rack sees a slowly drifting aggregate load (no application
    knowledge), rendered into 31 cooling/power/chassis sensors.  The
    target is the heat removed by the cooling loop, computed from the
    rack's flow and inlet/outlet temperatures, predicted 30 samples
    (~5 minutes) ahead.
    """
    spec = get_segment_spec("infrastructure")
    t = max(int(t * scale), 4 * (spec.wl + spec.horizon))
    n_racks = int(racks)
    # Per-rack draws in sequential order; rendering and the thermal EMA
    # of the heat target then run once over the whole rack plane.
    banks, latents, noises = [], [], []
    power_latents = np.empty((n_racks, t))
    heat_noises = np.empty((n_racks, t))
    for rack in range(n_racks):
        rng = np.random.default_rng(
            np.random.SeedSequence([0 if seed is None else seed, 31, rack])
        )
        # Slow drift: the aggregate load barely moves within one prediction
        # horizon, so current averages suffice to predict future heat.
        # Racks are homogeneous (one cooling loop, similar utilization):
        # per-component min-max normalization then maps consistently onto
        # the absolute heat target across racks.
        load = _ou_process(
            t, rng, mean=0.55 + rng.uniform(-0.04, 0.04), theta=0.012, sigma=0.018
        )
        membw = np.clip(load * rng.uniform(0.5, 0.8) + 0.05, 0.0, 1.0)
        latents.append(
            {
                "compute": load,
                "membw": membw,
                "memory": np.clip(0.3 + 0.3 * load, 0.0, 1.0),
                "io": np.full(t, 0.05),
                "net": np.clip(0.2 * load + 0.05, 0.0, 1.0),
                "freq": np.clip(1.0 - 0.1 * load, 0.0, 1.2),
            }
        )
        bank = rack_sensor_bank(spec.sensors, rng, n_chassis=6)
        banks.append(bank)
        noises.append(rng.standard_normal((len(bank), t)))
        power_latents[rack] = 0.3 + 0.65 * load + 0.2 * membw
        heat_noises[rack] = rng.normal(0.0, 0.004, size=t)
    matrices = render_batch(banks, latents, noises)
    # Heat removed by the cooling loop follows the rack's (thermally
    # smoothed) power draw.  Deriving it from the latent load rather
    # than from individual noisy sensor rows makes it predictable
    # "even when using only averages of the system's temperature and
    # power consumption" — the paper's explanation for why the
    # Infrastructure task saturates at l=5.
    heats = _ema(power_latents, 40) + heat_noises
    components = [
        ComponentData(
            name=f"rack{rack:02d}",
            matrix=matrices[rack],
            sensor_names=banks[rack].names,
            sensor_groups=banks[rack].groups,
            target=heats[rack],
            arch="rack",
        )
        for rack in range(n_racks)
    ]
    return SegmentData(spec, components, seed=seed)


def generate_cross_architecture(
    seed: int | None = 0, *, t: int = 1600, scale: float = 1.0
) -> SegmentData:
    """Cross-Architecture segment: 3 nodes, 52/46/39 sensors, 6 apps.

    The same six applications (three input configurations, shared-memory
    OpenMP) run on three architecturally different nodes, each with its
    own sensor count and response scaling — the setting of Section IV-F.
    """
    spec = get_segment_spec("cross-architecture")
    t = max(int(t * scale), 4 * spec.wl)
    label_names = application_names(include_idle=False)
    # Heterogeneous banks (52/46/39 sensors) still render through one
    # grouped smoothing pass; draws stay in per-architecture order.
    banks, latents, noises, node_labels = [], [], [], []
    for i, (arch, n_sensors, n_cores) in enumerate(ARCHITECTURES):
        rng = np.random.default_rng(
            np.random.SeedSequence([0 if seed is None else seed, 47, i])
        )
        schedule = build_schedule(
            t, rng, min_run=250, max_run=450, include_idle=False
        )
        latent, run_idx = _concat_schedule_latents(schedule, rng)
        node_labels.append(_labels_from_schedule(schedule, run_idx, label_names))
        bank = node_sensor_bank(
            n_sensors, rng, arch=arch, n_cores=min(n_cores, 8)
        )
        banks.append(bank)
        latents.append(latent)
        noises.append(rng.standard_normal((len(bank), t)))
    components = [
        ComponentData(
            name=f"{arch}-node",
            matrix=matrix,
            sensor_names=bank.names,
            sensor_groups=bank.groups,
            labels=labels,
            arch=arch,
        )
        for (arch, _, _), bank, matrix, labels in zip(
            ARCHITECTURES, banks, render_batch(banks, latents, noises), node_labels
        )
    ]
    return SegmentData(spec, components, label_names=label_names, seed=seed)


_GENERATORS: dict[str, Callable[..., SegmentData]] = {
    "fault": generate_fault,
    "application": generate_application,
    "power": generate_power,
    "infrastructure": generate_infrastructure,
    "cross-architecture": generate_cross_architecture,
}


def generate_segment(name: str, seed: int | None = 0, **kwargs) -> SegmentData:
    """Generate any segment by name (see :data:`repro.datasets.SEGMENTS`)."""
    spec = get_segment_spec(name)
    return _GENERATORS[spec.name](seed, **kwargs)


# ----------------------------------------------------------------------
# ML dataset assembly
# ----------------------------------------------------------------------
def build_ml_dataset(
    segment: SegmentData,
    method_factory: Callable[[], SignatureMethod],
    *,
    wl: int | None = None,
    ws: int | None = None,
) -> WindowedDataset:
    """Build the flat feature set of one segment with one signature method.

    Per the paper's methodology each component is processed independently
    (a fresh method instance fitted on the component's own data), then all
    components' feature sets are concatenated.  Classification windows get
    the majority per-sample label; regression windows the future-mean
    target at the segment's horizon.  The wall-clock spent inside the
    signature method is recorded as the "dataset generation" time of
    Figure 3a.
    """
    spec = segment.spec
    wl = spec.wl if wl is None else int(wl)
    ws = spec.ws if ws is None else int(ws)
    feats: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    groups: list[np.ndarray] = []
    gen_time = 0.0
    for ci, comp in enumerate(segment.components):
        method = method_factory()
        start = time.perf_counter()
        method.fit(comp.matrix)
        F = method.transform_series(comp.matrix, wl, ws)
        gen_time += time.perf_counter() - start
        if spec.is_classification:
            if comp.labels is None:
                raise ValueError(f"component {comp.name} lacks labels")
            y = window_majority_labels(comp.labels, wl, ws)
        else:
            if comp.target is None:
                raise ValueError(f"component {comp.name} lacks a target")
            y, n_use = future_mean_target(comp.target, wl, ws, spec.horizon)
            F = F[:n_use]
        if F.shape[0] != y.shape[0]:
            raise RuntimeError(
                f"feature/label mismatch on {comp.name}: {F.shape[0]} vs {y.shape[0]}"
            )
        feats.append(F)
        targets.append(y)
        groups.append(np.full(F.shape[0], ci, dtype=np.intp))
    X = np.concatenate(feats, axis=0)
    y_all = np.concatenate(targets)
    return WindowedDataset(
        X=X,
        y=y_all,
        task=spec.task,
        label_names=segment.label_names,
        groups=np.concatenate(groups),
        generation_time_s=gen_time,
        signature_size=int(X.shape[1]),
    )

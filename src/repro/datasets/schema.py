"""Segment descriptors mirroring Table I of the paper.

Each HPC-ODA segment is described by a :class:`SegmentSpec` holding the
acquisition parameters from Table I (nodes, sensors, sampling interval,
aggregation window ``wl`` and step ``ws`` — both converted from wall-clock
time to samples) plus the associated ODA task.  The generators accept a
``scale`` factor so tests can produce small datasets while experiments use
paper-sized ones.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SegmentSpec", "SEGMENTS", "ARCHITECTURES", "get_segment_spec"]


@dataclass(frozen=True)
class SegmentSpec:
    """Static description of one HPC-ODA segment.

    Attributes
    ----------
    name:
        Segment identifier (``fault``, ``application``, ``power``,
        ``infrastructure``, ``cross-architecture``).
    system:
        HPC system the real segment was captured on (informational).
    nodes:
        Number of monitored components (compute nodes or racks).
    sensors:
        Sensors per component.  For the Cross-Architecture segment this is
        the per-architecture tuple ``(52, 46, 39)`` — see
        :data:`ARCHITECTURES`.
    sampling_interval_s:
        Sampling interval of the original data, in seconds.
    wl:
        Aggregation window, in samples (Table I's wall-clock ``wl``
        divided by the sampling interval).
    ws:
        Window step, in samples.
    task:
        ``"classification"`` or ``"regression"``.
    target:
        For regression tasks, a description of the predicted quantity and
        the prediction horizon in samples.
    horizon:
        Regression prediction horizon, in samples (0 for classification).
    """

    name: str
    system: str
    nodes: int
    sensors: int | tuple[int, ...]
    sampling_interval_s: float
    wl: int
    ws: int
    task: str
    target: str = ""
    horizon: int = 0

    @property
    def is_classification(self) -> bool:
        return self.task == "classification"

    def sensors_for(self, component: int = 0) -> int:
        """Sensor count of one component (handles the cross-arch tuple)."""
        if isinstance(self.sensors, tuple):
            return self.sensors[component % len(self.sensors)]
        return self.sensors


#: Architecture descriptors of the Cross-Architecture segment: name,
#: sensor count, physical cores — per Section IV-F.
ARCHITECTURES: tuple[tuple[str, int, int], ...] = (
    ("skylake", 52, 48),        # SuperMUC-NG: 2x 24-core Intel Skylake
    ("knights-landing", 46, 64),  # CooLMUC-3: Xeon Phi 7210-F
    ("amd-rome", 39, 128),      # BEAST: 2x 64-core AMD Epyc Rome
)


#: The five Table I segments.  ``wl``/``ws`` are converted to samples:
#: Fault 1m/10s @ 1s -> 60/10; Application 30s/5s @ 1s -> 30/5;
#: Power 1s/500ms @ 100ms -> 10/5; Infrastructure 5m/1m @ 10s -> 30/6;
#: Cross-Arch 30s/2s @ 1s -> 30/2.
SEGMENTS: dict[str, SegmentSpec] = {
    "fault": SegmentSpec(
        name="fault",
        system="ETH Testbed",
        nodes=1,
        sensors=128,
        sampling_interval_s=1.0,
        wl=60,
        ws=10,
        task="classification",
    ),
    "application": SegmentSpec(
        name="application",
        system="SuperMUC-NG",
        nodes=16,
        sensors=52,
        sampling_interval_s=1.0,
        wl=30,
        ws=5,
        task="classification",
    ),
    "power": SegmentSpec(
        name="power",
        system="CooLMUC-3",
        nodes=1,
        sensors=47,
        sampling_interval_s=0.1,
        wl=10,
        ws=5,
        task="regression",
        target="mean node power over the next 3 samples (~300 ms)",
        horizon=3,
    ),
    "infrastructure": SegmentSpec(
        name="infrastructure",
        system="CooLMUC-3",
        nodes=148,
        sensors=31,
        sampling_interval_s=10.0,
        wl=30,
        ws=6,
        task="regression",
        target="mean heat removed per rack over the next 30 samples (~5 m)",
        horizon=30,
    ),
    "cross-architecture": SegmentSpec(
        name="cross-architecture",
        system="Multiple",
        nodes=3,
        sensors=(52, 46, 39),
        sampling_interval_s=1.0,
        wl=30,
        ws=2,
        task="classification",
    ),
}


def get_segment_spec(name: str) -> SegmentSpec:
    """Look up a segment spec by (case-insensitive) name."""
    key = name.lower()
    aliases = {"crossarch": "cross-architecture", "cross_architecture": "cross-architecture"}
    key = aliases.get(key, key)
    if key not in SEGMENTS:
        raise KeyError(f"unknown segment {name!r}; known: {sorted(SEGMENTS)}")
    return SEGMENTS[key]

"""Declarative, content-addressable dataset recipes.

A :class:`DatasetRecipe` describes *how to produce* one HPC-ODA segment —
the generator name, its seed/scale/keyword parameters and optional
post-generation perturbations (sensor noise, slow drift) — as a frozen,
serializable value.  Two recipes with equal fields always produce
bit-identical segments, so the recipe's canonical JSON form can serve as
a content-address for cached artifacts (see ``repro.scenarios.cache``).

This mirrors the generator-dataset primitive of spec-driven benchmark
harnesses: the recipe identifies a *parametric function*, not a file, and
``(recipe) -> data`` is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.datasets.generators import (
    DATAGEN_VERSION,
    SegmentData,
    generate_segment,
)
from repro.datasets.schema import get_segment_spec

__all__ = ["DatasetRecipe", "recipe"]


def _frozen_params(params) -> tuple[tuple[str, Any], ...]:
    """Normalize generator kwargs into a sorted, hashable tuple of pairs."""
    if isinstance(params, dict):
        items = params.items()
    else:
        items = tuple(params)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class DatasetRecipe:
    """Everything needed to (re)generate one segment deterministically.

    Attributes
    ----------
    segment:
        Segment generator name (``fault``, ``application``, ...).
    seed:
        Base RNG seed passed to the generator.
    scale:
        Segment-length multiplier (the generators' ``scale`` argument).
    params:
        Extra generator keyword arguments (``t``, ``nodes``, ``racks``)
        as a sorted tuple of ``(name, value)`` pairs.
    noise_std:
        When positive, additive Gaussian sensor noise applied after
        generation, expressed as a fraction of each sensor's standard
        deviation (robustness scenarios).
    drift:
        When nonzero, a linear per-sensor ramp of this magnitude (again
        in per-sensor standard deviations, random sign) added over the
        series — a slow sensor-calibration drift.
    noise_seed:
        Seed of the perturbation RNG (independent of ``seed``).
    label:
        Display name used in result rows; defaults to ``segment``.
        Distinguishes recipe variants (e.g. ``application+noise5%``).
    """

    segment: str
    seed: int = 0
    scale: float = 1.0
    params: tuple[tuple[str, Any], ...] = ()
    noise_std: float = 0.0
    drift: float = 0.0
    noise_seed: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        get_segment_spec(self.segment)  # fail fast on unknown segments
        object.__setattr__(self, "params", _frozen_params(self.params))

    # -- identity ------------------------------------------------------
    @property
    def display(self) -> str:
        """Row label: explicit ``label`` or the plain segment name."""
        return self.label or self.segment

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; field order is irrelevant (keys are sorted
        during canonicalization, see ``repro.scenarios.spec``)."""
        return {
            "segment": self.segment,
            "seed": self.seed,
            "scale": self.scale,
            "params": self.params_dict(),
            "noise_std": self.noise_std,
            "drift": self.drift,
            "noise_seed": self.noise_seed,
            "label": self.label,
        }

    def cache_dict(self) -> dict[str, Any]:
        """The fields that determine the *generated data* (cache identity).

        Drops ``label`` (display-only) and, when no perturbation is
        configured, ``noise_seed`` (no random draw consumes it) — so
        recipes that build bit-identical segments share cached artifacts
        across scenarios.  Includes the generation-engine version
        (:data:`~repro.datasets.generators.DATAGEN_VERSION`): the
        vectorized scans agree with the frozen seed generators only to
        ``rtol=1e-10``, so artifacts produced by a different engine must
        regenerate rather than silently mix numerics.
        """
        data = self.to_dict()
        del data["label"]
        if self.noise_std == 0.0 and self.drift == 0.0:
            del data["noise_seed"]
        data["datagen"] = DATAGEN_VERSION
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DatasetRecipe":
        return cls(
            segment=data["segment"],
            seed=data.get("seed", 0),
            scale=data.get("scale", 1.0),
            params=_frozen_params(data.get("params", {})),
            noise_std=data.get("noise_std", 0.0),
            drift=data.get("drift", 0.0),
            noise_seed=data.get("noise_seed", 0),
            label=data.get("label", ""),
        )

    # -- derivation ----------------------------------------------------
    def with_overrides(
        self, *, seed: int | None = None, scale: float | None = None
    ) -> "DatasetRecipe":
        """Copy with the shared ``--seed``/``--scale`` CLI flags applied."""
        out = self
        if seed is not None:
            out = replace(out, seed=int(seed))
        if scale is not None:
            out = replace(out, scale=float(scale))
        return out

    # -- materialization ----------------------------------------------
    def build(self) -> SegmentData:
        """Generate the segment (plus perturbations) this recipe names."""
        segment = generate_segment(
            self.segment, seed=self.seed, scale=self.scale, **self.params_dict()
        )
        if self.noise_std > 0.0 or self.drift != 0.0:
            _perturb(segment, self.noise_std, self.drift, self.noise_seed)
        return segment


def _perturb(
    segment: SegmentData, noise_std: float, drift: float, noise_seed: int
) -> None:
    """Apply deterministic sensor noise / drift to a fresh segment.

    Only sensor readings are perturbed; labels and regression targets are
    untouched, so robustness scenarios measure how signature methods cope
    with degraded telemetry on an unchanged task.
    """
    for ci, comp in enumerate(segment.components):
        rng = np.random.default_rng(np.random.SeedSequence([noise_seed, 83, ci]))
        m = comp.matrix
        row_std = m.std(axis=1, keepdims=True)
        ref = np.where(row_std > 0.0, row_std, 1.0)
        if noise_std > 0.0:
            m += rng.normal(0.0, 1.0, size=m.shape) * (noise_std * ref)
        if drift != 0.0:
            ramp = np.linspace(0.0, 1.0, m.shape[1])
            sign = rng.choice(np.array([-1.0, 1.0]), size=(m.shape[0], 1))
            m += drift * ref * sign * ramp


def recipe(segment: str, /, **kwargs: Any) -> DatasetRecipe:
    """Shorthand constructor: generator kwargs become ``params``.

    ``recipe("application", t=2400, nodes=16)`` is
    ``DatasetRecipe("application", params=(("nodes", 16), ("t", 2400)))``;
    recipe fields (``seed``, ``scale``, ``noise_std``, ``drift``,
    ``noise_seed``, ``label``) are picked out by name.
    """
    fields = {}
    for name in ("seed", "scale", "noise_std", "drift", "noise_seed", "label"):
        if name in kwargs:
            fields[name] = kwargs.pop(name)
    return DatasetRecipe(segment, params=_frozen_params(kwargs), **fields)

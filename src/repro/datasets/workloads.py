"""Application workload models.

Each model synthesizes the *latent activity* of one application run as a
set of named channels (compute intensity, memory occupancy, memory
bandwidth, I/O, network, CPU frequency), which the sensor models of
:mod:`repro.datasets.sensors` then turn into monitoring readings.

The six applications mirror the CORAL-2-style workloads of the HPC-ODA
Application segment, with the temporal shapes the paper's Figures 2, 6
and 7 describe:

* **AMG** — iterative behaviour plus memory usage that grows over the run;
* **Kripke** — very clear iterative (bursty) compute/membw pattern;
* **LAMMPS** — regular mid-amplitude iterations;
* **Linpack** — constant heavy load with a pronounced initialization phase;
* **Quicksilver** — light computational load but characteristic oscillating
  CPU frequency induced by its code mix;
* **Nekbone** — conjugate-gradient-style alternating phases.

Every application supports three input configurations that scale period,
amplitude and memory footprint (Section II-B: "each under three possible
input configurations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.engine.scan import ema_scan

__all__ = [
    "CHANNELS",
    "WorkloadModel",
    "APPLICATIONS",
    "IDLE",
    "application_names",
    "build_schedule",
]

#: Latent channels produced by every workload model.
CHANNELS: tuple[str, ...] = ("compute", "memory", "membw", "io", "net", "freq")

#: Per-configuration (0, 1, 2) multipliers: (period, amplitude, memory).
_CONFIG_SCALES: tuple[tuple[float, float, float], ...] = (
    (1.0, 1.0, 1.0),
    (1.6, 0.8, 1.3),
    (0.7, 1.15, 0.75),
)


def _phase(t: int, period: float, rng: np.random.Generator) -> np.ndarray:
    """Time axis in periods with a random initial phase."""
    start = rng.uniform(0.0, period)
    return (np.arange(t) + start) / period


def _square(x: np.ndarray, duty: float = 0.5) -> np.ndarray:
    """Square wave in [0, 1] with the given duty cycle."""
    return ((x % 1.0) < duty).astype(np.float64)


def _sawtooth(x: np.ndarray) -> np.ndarray:
    """Rising sawtooth in [0, 1]."""
    return x % 1.0


def _smooth(x: np.ndarray, samples: int) -> np.ndarray:
    """Exponential moving average with time constant ``samples``."""
    if samples <= 1:
        return x
    return ema_scan(x, samples)


def _init_phase(t: int, length: int) -> np.ndarray:
    """1 during the first ``length`` samples, decaying to 0."""
    ramp = np.zeros(t)
    L = min(length, t)
    ramp[:L] = 1.0 - (np.arange(L) / max(L, 1)) ** 2
    return ramp


@dataclass
class WorkloadModel:
    """Parametric workload: a latent-channel synthesizer.

    Parameters
    ----------
    name:
        Application name (used as classification label).
    base_period:
        Iteration period in samples (before config scaling).
    synth:
        Function ``(t, period, amp, mem_scale, rng) -> dict`` producing the
        channel arrays; wrapped by :meth:`latent`, which adds the shared
        frequency response and clips to physical ranges.
    freq_oscillation:
        Amplitude of an app-specific periodic CPU-frequency oscillation
        (Quicksilver's signature behaviour).
    """

    name: str
    base_period: float
    synth: Callable[..., dict]
    freq_oscillation: float = 0.0
    extra: dict = field(default_factory=dict)

    def latent(
        self, t: int, config: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Synthesize ``t`` samples of latent activity for one run."""
        if t < 1:
            raise ValueError("run length must be >= 1")
        pscale, ascale, mscale = _CONFIG_SCALES[config % len(_CONFIG_SCALES)]
        period = self.base_period * pscale
        channels = self.synth(t, period, ascale, mscale, rng)
        out: dict[str, np.ndarray] = {}
        for name in CHANNELS:
            if name == "freq":
                continue
            arr = channels.get(name)
            if arr is None:
                arr = np.zeros(t)
            out[name] = np.clip(arr, 0.0, 1.5)
        # CPU frequency: nominal 1.0, dips under heavy sustained compute
        # (thermal/turbo response) plus the app-specific oscillation.
        freq = 1.0 - 0.12 * _smooth(out["compute"], 20)
        if self.freq_oscillation > 0.0:
            osc = 0.5 * (1.0 + np.sin(2 * np.pi * _phase(t, period, rng)))
            freq = freq - self.freq_oscillation * osc
        freq = freq + rng.normal(0.0, 0.004, size=t)
        out["freq"] = np.clip(freq, 0.3, 1.2)
        return out


# ----------------------------------------------------------------------
# Application synthesizers
# ----------------------------------------------------------------------
def _amg(t, period, amp, mem, rng):
    x = _phase(t, period, rng)
    iters = 0.55 + 0.35 * _sawtooth(x)
    compute = amp * iters
    # Memory grows over the run (the gradient visible in Figure 2).
    memory = mem * (0.25 + 0.55 * np.linspace(0.0, 1.0, t) + 0.08 * _sawtooth(x))
    membw = amp * (0.35 + 0.4 * _square(x, 0.5))
    io = 0.05 + 0.1 * _init_phase(t, int(period))
    net = amp * (0.2 + 0.2 * _square(x, 0.4))
    return {"compute": compute, "memory": memory, "membw": membw, "io": io, "net": net}


def _kripke(t, period, amp, mem, rng):
    x = _phase(t, period, rng)
    burst = _square(x, 0.45)
    compute = amp * (0.3 + 0.6 * burst)
    memory = mem * (0.45 + 0.05 * burst)
    membw = amp * (0.15 + 0.7 * burst)
    io = 0.04 + 0.08 * _init_phase(t, int(period // 2) or 1)
    net = amp * (0.1 + 0.5 * (1.0 - burst))  # communication between sweeps
    return {"compute": compute, "memory": memory, "membw": membw, "io": io, "net": net}


def _lammps(t, period, amp, mem, rng):
    x = _phase(t, period, rng)
    wave = 0.5 * (1.0 + np.sin(2 * np.pi * x))
    compute = amp * (0.5 + 0.3 * wave)
    memory = mem * (0.35 + 0.05 * wave)
    membw = amp * (0.3 + 0.25 * wave)
    io = 0.05 + 0.05 * _square(x / 4.0, 0.1)  # periodic trajectory dumps
    net = amp * (0.25 + 0.2 * wave)
    return {"compute": compute, "memory": memory, "membw": membw, "io": io, "net": net}


def _linpack(t, period, amp, mem, rng):
    init = _init_phase(t, max(int(period), 8))
    compute = amp * (0.95 - 0.35 * init)
    memory = mem * (0.7 - 0.2 * init)
    membw = amp * (0.8 - 0.3 * init)
    io = 0.03 + 0.5 * init  # heavy setup I/O
    net = amp * (0.35 + 0.3 * init)
    return {"compute": compute, "memory": memory, "membw": membw, "io": io, "net": net}


def _quicksilver(t, period, amp, mem, rng):
    x = _phase(t, period, rng)
    compute = amp * (0.18 + 0.07 * _square(x, 0.5))
    memory = mem * (0.3 + 0.02 * _sawtooth(x))
    membw = amp * (0.1 + 0.05 * _square(x, 0.5))
    io = 0.02 + 0.02 * _square(x / 3.0, 0.15)
    net = amp * (0.08 + 0.05 * _square(x, 0.5))
    return {"compute": compute, "memory": memory, "membw": membw, "io": io, "net": net}


def _nekbone(t, period, amp, mem, rng):
    x = _phase(t, period, rng)
    cg = 0.5 * (1.0 + np.sin(2 * np.pi * x)) ** 2 / 2.0
    compute = amp * (0.4 + 0.35 * cg)
    memory = mem * (0.4 + 0.03 * cg)
    membw = amp * (0.5 + 0.3 * cg)
    io = np.full(t, 0.03)
    net = amp * (0.3 + 0.25 * (1.0 - cg))
    return {"compute": compute, "memory": memory, "membw": membw, "io": io, "net": net}


def _idle(t, period, amp, mem, rng):
    jitter = rng.normal(0.0, 0.01, size=t)
    return {
        "compute": 0.03 + np.abs(jitter),
        "memory": np.full(t, 0.08),
        "membw": np.full(t, 0.02),
        "io": np.full(t, 0.01),
        "net": np.full(t, 0.01),
    }


#: The six HPC-ODA applications, keyed by name.
APPLICATIONS: dict[str, WorkloadModel] = {
    "AMG": WorkloadModel("AMG", base_period=120.0, synth=_amg),
    "Kripke": WorkloadModel("Kripke", base_period=90.0, synth=_kripke),
    "LAMMPS": WorkloadModel("LAMMPS", base_period=100.0, synth=_lammps),
    "Linpack": WorkloadModel("Linpack", base_period=150.0, synth=_linpack),
    "Quicksilver": WorkloadModel(
        "Quicksilver", base_period=80.0, synth=_quicksilver, freq_oscillation=0.18
    ),
    "Nekbone": WorkloadModel("Nekbone", base_period=110.0, synth=_nekbone),
}

#: Idle (no job running) workload, labeled separately in the segments.
IDLE = WorkloadModel("idle", base_period=200.0, synth=_idle)


def application_names(include_idle: bool = False) -> tuple[str, ...]:
    """The classification label set, optionally with ``idle``."""
    names = tuple(APPLICATIONS)
    return names + ("idle",) if include_idle else names


def build_schedule(
    total_t: int,
    rng: np.random.Generator,
    *,
    min_run: int = 200,
    max_run: int = 400,
    include_idle: bool = True,
    apps: tuple[str, ...] | None = None,
) -> list[tuple[str, int, int]]:
    """Random back-to-back job schedule covering ``total_t`` samples.

    Returns a list of ``(app_name, config, run_length)`` entries whose run
    lengths sum to ``total_t``.  Applications (and optionally idle gaps)
    are drawn uniformly; every application appears at least once when the
    horizon allows, so classification datasets contain all classes.
    """
    if total_t < 1:
        raise ValueError("total_t must be >= 1")
    if min_run < 2 or max_run < min_run:
        raise ValueError("invalid run-length range")
    names = list(apps if apps is not None else APPLICATIONS)
    pool = names + (["idle"] if include_idle else [])
    schedule: list[tuple[str, int, int]] = []
    remaining = total_t
    # First pass guarantees coverage of every application.
    pending = list(names)
    rng.shuffle(pending)
    while remaining > 0:
        if pending:
            app = pending.pop()
        else:
            app = pool[int(rng.integers(len(pool)))]
        length = int(rng.integers(min_run, max_run + 1))
        length = min(length, remaining)
        config = int(rng.integers(3))
        schedule.append((app, config, length))
        remaining -= length
    return schedule

"""Window extraction and label/target alignment.

Turning a labeled sensor matrix into an ML dataset requires aligning each
``(wl, ws)`` aggregation window with a classification label (the dominant
per-sample label inside the window) or a regression target (the paper's
"average ... over the next *h* samples" convention).
"""

from __future__ import annotations

import numpy as np

__all__ = ["window_starts", "window_majority_labels", "future_mean_target"]


def window_starts(t: int, wl: int, ws: int) -> np.ndarray:
    """Start indices of all complete windows of length ``wl``, step ``ws``."""
    if wl < 1 or ws < 1:
        raise ValueError("wl and ws must be positive")
    if t < wl:
        return np.empty(0, dtype=np.intp)
    return np.arange(0, t - wl + 1, ws, dtype=np.intp)


def window_majority_labels(labels: np.ndarray, wl: int, ws: int) -> np.ndarray:
    """Dominant per-sample label of each window.

    Parameters
    ----------
    labels:
        Integer label per sample, shape ``(t,)``.
    wl, ws:
        Window length and step, in samples.

    Returns
    -------
    numpy.ndarray
        One label per window; ties resolve to the smallest label value
        (deterministic).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be 1-D")
    if not np.issubdtype(labels.dtype, np.integer):
        raise ValueError("labels must be integer-encoded")
    starts = window_starts(labels.shape[0], wl, ws)
    if starts.size == 0:
        return np.empty(0, dtype=labels.dtype)
    n_classes = int(labels.max()) + 1 if labels.size else 1
    # Prefix-sum per class: counts inside any window in O(1).
    onehot = np.zeros((labels.shape[0] + 1, n_classes), dtype=np.int64)
    onehot[1:][np.arange(labels.shape[0]), labels] = 1
    csum = np.cumsum(onehot, axis=0)
    counts = csum[starts + wl] - csum[starts]
    return counts.argmax(axis=1).astype(labels.dtype)


def future_mean_target(
    series: np.ndarray, wl: int, ws: int, horizon: int
) -> tuple[np.ndarray, int]:
    """Mean of ``series`` over the ``horizon`` samples after each window.

    For a window covering samples ``[s, s + wl)`` the target is
    ``mean(series[s + wl : s + wl + horizon])`` — e.g. the Power segment
    predicts "the average compute node power consumption in the next 3
    samples".  Windows whose horizon extends past the series end are
    dropped.

    Returns
    -------
    (targets, n_windows):
        Target vector and the number of *usable* windows (callers must
        truncate their feature matrices to this count).
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("target series must be 1-D")
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    starts = window_starts(series.shape[0], wl, ws)
    usable = starts[starts + wl + horizon <= series.shape[0]]
    if usable.size == 0:
        return np.empty(0), 0
    csum = np.concatenate(([0.0], np.cumsum(series)))
    tails = csum[usable + wl + horizon] - csum[usable + wl]
    return tails / horizon, int(usable.size)

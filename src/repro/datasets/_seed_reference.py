"""Frozen seed implementation of the telemetry generators.

This module preserves, verbatim in behaviour, the pre-vectorization data
generation path: the sample-by-sample Python recurrences (``_ema``,
``_ou_process``, ``_damped_oscillation``, the sensor response-lag
smoothing loop) and the per-node / per-rack / per-device generator loops
that call them.

It exists for two reasons:

* the golden-model tests in ``tests/test_datagen_golden.py`` assert
  that the batched scan engine in :mod:`repro.datasets.generators` /
  :mod:`repro.datasets.sensors` produces bit-identical labels, fault
  episodes and schedules, and numerics within ``rtol=1e-10``;
* ``benchmarks/test_datagen_scaling.py`` measures the vectorized cold
  generation path against this exact code and records the speedups in
  ``BENCH_datagen.json``.

Pure vectorized building blocks that the optimization does not touch —
the workload synthesizers, sensor-bank *construction* (all RNG draws),
schedules and fault models — are imported from the live modules, so the
reference consumes the exact same random streams as the optimized path;
only the recurrence evaluation and the per-component orchestration are
frozen here.

Do not modify this file when optimizing the live generators — it is the
baseline the optimizations are measured and verified against.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.faults import FAULTS, fault_names
from repro.datasets.generators import ComponentData, SegmentData
from repro.datasets.schema import ARCHITECTURES, get_segment_spec
from repro.datasets.sensors import (
    SensorBank,
    node_sensor_bank,
    rack_sensor_bank,
)
from repro.datasets.workloads import (
    APPLICATIONS,
    CHANNELS,
    IDLE,
    WorkloadModel,
    application_names,
    build_schedule,
)

__all__ = [
    "reference_ema",
    "reference_ou_process",
    "reference_damped_oscillation",
    "reference_smooth_matrix",
    "reference_latent",
    "reference_render",
    "reference_generate_segment",
    "REFERENCE_GENERATORS",
]


# ----------------------------------------------------------------------
# Sequential recurrences (the frozen hot loops)
# ----------------------------------------------------------------------
def reference_ema(x: np.ndarray, samples: int) -> np.ndarray:
    """Exponential moving average with time constant ``samples``."""
    if samples <= 1:
        return x.copy()
    alpha = 1.0 / samples
    out = np.empty_like(x)
    acc = x[0]
    for i, v in enumerate(x):
        acc += alpha * (v - acc)
        out[i] = acc
    return out


def _reference_smooth(x: np.ndarray, samples: int) -> np.ndarray:
    """The workload-model smoothing (returns ``x`` itself when <= 1)."""
    if samples <= 1:
        return x
    alpha = 1.0 / samples
    out = np.empty_like(x)
    acc = x[0]
    for i, v in enumerate(x):
        acc += alpha * (v - acc)
        out[i] = acc
    return out


def reference_smooth_matrix(x: np.ndarray, lag: int) -> np.ndarray:
    """Exponential smoothing along the last axis (sequential in time)."""
    if lag <= 1:
        return x
    alpha = 1.0 / lag
    out = np.empty_like(x)
    out[..., 0] = x[..., 0]
    for i in range(1, x.shape[-1]):
        out[..., i] = out[..., i - 1] + alpha * (x[..., i] - out[..., i - 1])
    return out


def reference_damped_oscillation(
    t: int,
    rng: np.random.Generator,
    *,
    stiffness: float = 0.03,
    damping: float = 0.06,
    drive: float = 0.01,
) -> np.ndarray:
    """Noise-driven damped oscillator evaluated sample by sample."""
    x = np.zeros(t)
    v = 0.0
    kicks = drive * rng.standard_normal(t)
    for i in range(1, t):
        v = (1.0 - damping) * v - stiffness * x[i - 1] + kicks[i]
        x[i] = x[i - 1] + v
    return x


def reference_ou_process(
    t: int,
    rng: np.random.Generator,
    *,
    mean: float = 0.5,
    theta: float = 0.02,
    sigma: float = 0.03,
    lo: float = 0.0,
    hi: float = 1.0,
) -> np.ndarray:
    """Mean-reverting random process evaluated sample by sample."""
    x = np.empty(t)
    x[0] = mean
    noise = sigma * rng.standard_normal(t)
    for i in range(1, t):
        x[i] = x[i - 1] + theta * (mean - x[i - 1]) + noise[i]
    return np.clip(x, lo, hi)


# ----------------------------------------------------------------------
# Latent synthesis + rendering through the sequential recurrences
# ----------------------------------------------------------------------
def reference_latent(
    model: WorkloadModel, t: int, config: int, rng: np.random.Generator
) -> dict[str, np.ndarray]:
    """``WorkloadModel.latent`` with the frozen smoothing loop."""
    from repro.datasets.workloads import _CONFIG_SCALES, _phase

    if t < 1:
        raise ValueError("run length must be >= 1")
    pscale, ascale, mscale = _CONFIG_SCALES[config % len(_CONFIG_SCALES)]
    period = model.base_period * pscale
    channels = model.synth(t, period, ascale, mscale, rng)
    out: dict[str, np.ndarray] = {}
    for name in CHANNELS:
        if name == "freq":
            continue
        arr = channels.get(name)
        if arr is None:
            arr = np.zeros(t)
        out[name] = np.clip(arr, 0.0, 1.5)
    freq = 1.0 - 0.12 * _reference_smooth(out["compute"], 20)
    if model.freq_oscillation > 0.0:
        osc = 0.5 * (1.0 + np.sin(2 * np.pi * _phase(t, period, rng)))
        freq = freq - model.freq_oscillation * osc
    freq = freq + rng.normal(0.0, 0.004, size=t)
    out["freq"] = np.clip(freq, 0.3, 1.2)
    return out


def _reference_concat_schedule_latents(
    schedule: list[tuple[str, int, int]], rng: np.random.Generator
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    pieces: dict[str, list[np.ndarray]] = {ch: [] for ch in CHANNELS}
    run_idx = []
    for k, (app, config, length) in enumerate(schedule):
        model = IDLE if app == "idle" else APPLICATIONS[app]
        latent = reference_latent(model, length, config, rng)
        for ch in CHANNELS:
            pieces[ch].append(latent[ch])
        run_idx.append(np.full(length, k, dtype=np.intp))
    return (
        {ch: np.concatenate(parts) for ch, parts in pieces.items()},
        np.concatenate(run_idx),
    )


def _reference_labels_from_schedule(
    schedule: list[tuple[str, int, int]],
    run_idx: np.ndarray,
    label_names: tuple[str, ...],
) -> np.ndarray:
    index = {name: i for i, name in enumerate(label_names)}
    per_run = np.array([index[app] for app, _, _ in schedule], dtype=np.intp)
    return per_run[run_idx]


def reference_render(
    bank: SensorBank, latent: dict[str, np.ndarray], rng: np.random.Generator
) -> np.ndarray:
    """``SensorBank.render`` with the frozen per-sample smoothing loop."""
    t = None
    for ch in CHANNELS:
        if ch in latent:
            t = np.asarray(latent[ch]).shape[0]
            break
    if t is None:
        raise ValueError("latent input contains no known channels")
    L = np.zeros((len(CHANNELS), t))
    for j, ch in enumerate(CHANNELS):
        if ch in latent:
            arr = np.asarray(latent[ch], dtype=np.float64)
            if arr.shape != (t,):
                raise ValueError(
                    f"channel {ch!r} has shape {arr.shape}, expected ({t},)"
                )
            L[j] = arr
    raw = bank._mix @ L
    for lag in np.unique(bank._lags):
        if lag > 1:
            rows = bank._lags == lag
            raw[rows] = reference_smooth_matrix(raw[rows], int(lag))
    out = bank._offset[:, None] + bank._gain[:, None] * raw
    out += bank._noise[:, None] * rng.standard_normal(out.shape)
    np.maximum(out, 0.0, where=bank._clip[:, None], out=out)
    return out


# ----------------------------------------------------------------------
# Segment generators (frozen per-component orchestration)
# ----------------------------------------------------------------------
def reference_generate_fault(
    seed: int | None = 0, *, t: int = 20000, scale: float = 1.0
) -> SegmentData:
    spec = get_segment_spec("fault")
    t = max(int(t * scale), 4 * spec.wl)
    rng = np.random.default_rng(seed)
    schedule = build_schedule(t, rng, min_run=300, max_run=600)
    latent, _run_idx = _reference_concat_schedule_latents(schedule, rng)

    label_names = fault_names(include_healthy=True)
    labels = np.zeros(t, dtype=np.intp)

    episodes: list[tuple[int, int, int, int]] = []
    cursor = int(rng.integers(spec.wl, 3 * spec.wl))
    k = 0
    while cursor < t - spec.wl:
        fault_id = k % len(FAULTS)
        setting = (k // len(FAULTS)) % 2
        duration = int(rng.integers(150, 350))
        stop = min(cursor + duration, t)
        episodes.append((fault_id, setting, cursor, stop))
        labels[cursor:stop] = fault_id + 1
        FAULTS[fault_id].apply_channels(latent, cursor, stop, setting, rng)
        cursor = stop + int(rng.integers(100, 300))
        k += 1

    bank = node_sensor_bank(spec.sensors, rng, arch="broadwell", n_cores=16)
    matrix = reference_render(bank, latent, rng)
    groups = {g: bank.indices_of_group(g) for g in set(bank.groups)}
    for fault_id, setting, start, stop in episodes:
        FAULTS[fault_id].apply_sensors(matrix, groups, start, stop, setting, rng)

    component = ComponentData(
        name="node0",
        matrix=matrix,
        sensor_names=bank.names,
        sensor_groups=bank.groups,
        labels=labels,
        arch="broadwell",
    )
    return SegmentData(spec, [component], label_names=label_names, seed=seed)


def reference_generate_application(
    seed: int | None = 0,
    *,
    t: int = 1200,
    nodes: int | None = None,
    scale: float = 1.0,
) -> SegmentData:
    spec = get_segment_spec("application")
    t = max(int(t * scale), 4 * spec.wl)
    n_nodes = spec.nodes if nodes is None else int(nodes)
    rng = np.random.default_rng(seed)
    schedule = build_schedule(t, rng, min_run=250, max_run=500)
    latent, run_idx = _reference_concat_schedule_latents(schedule, rng)
    label_names = application_names(include_idle=False) + ("idle",)
    labels = _reference_labels_from_schedule(schedule, run_idx, label_names)

    components = []
    for node in range(n_nodes):
        node_rng = np.random.default_rng(
            np.random.SeedSequence([0 if seed is None else seed, 17, node])
        )
        gain = node_rng.uniform(0.92, 1.08)
        node_latent = {
            ch: np.clip(
                arr * gain + node_rng.normal(0.0, 0.01, size=arr.shape), 0.0, 1.6
            )
            for ch, arr in latent.items()
        }
        bank = node_sensor_bank(spec.sensors, node_rng, arch="skylake", n_cores=8)
        components.append(
            ComponentData(
                name=f"node{node:02d}",
                matrix=reference_render(bank, node_latent, node_rng),
                sensor_names=bank.names,
                sensor_groups=bank.groups,
                labels=labels.copy(),
                arch="skylake",
            )
        )
    return SegmentData(spec, components, label_names=label_names, seed=seed)


def reference_generate_power(
    seed: int | None = 0, *, t: int = 8000, scale: float = 1.0
) -> SegmentData:
    spec = get_segment_spec("power")
    t = max(int(t * scale), 4 * (spec.wl + spec.horizon))
    rng = np.random.default_rng(seed)
    schedule = [
        (app, cfg, length)
        for (app, cfg, length) in build_schedule(t, rng, min_run=250, max_run=500)
        for cfg in (cfg % 2,)
    ]
    latent, _ = _reference_concat_schedule_latents(schedule, rng)
    bank = node_sensor_bank(
        spec.sensors, rng, arch="knights-landing", n_cores=8
    )
    matrix = reference_render(bank, latent, rng)
    wobble = reference_damped_oscillation(
        t, rng, stiffness=0.03, damping=0.06, drive=0.012
    )
    names = list(bank.names)
    power_row = names.index("power_node")
    dram_row = names.index("power_dram")
    matrix[power_row] += wobble
    matrix[dram_row] += 0.6 * wobble
    np.maximum(matrix, 0.0, out=matrix)
    component = ComponentData(
        name="node0",
        matrix=matrix,
        sensor_names=bank.names,
        sensor_groups=bank.groups,
        target=matrix[power_row].copy(),
        arch="knights-landing",
    )
    return SegmentData(spec, [component], seed=seed)


def reference_generate_infrastructure(
    seed: int | None = 0,
    *,
    t: int = 1400,
    racks: int = 8,
    scale: float = 1.0,
) -> SegmentData:
    spec = get_segment_spec("infrastructure")
    t = max(int(t * scale), 4 * (spec.wl + spec.horizon))
    components = []
    for rack in range(int(racks)):
        rng = np.random.default_rng(
            np.random.SeedSequence([0 if seed is None else seed, 31, rack])
        )
        load = reference_ou_process(
            t, rng, mean=0.55 + rng.uniform(-0.04, 0.04), theta=0.012, sigma=0.018
        )
        membw = np.clip(load * rng.uniform(0.5, 0.8) + 0.05, 0.0, 1.0)
        latent = {
            "compute": load,
            "membw": membw,
            "memory": np.clip(0.3 + 0.3 * load, 0.0, 1.0),
            "io": np.full(t, 0.05),
            "net": np.clip(0.2 * load + 0.05, 0.0, 1.0),
            "freq": np.clip(1.0 - 0.1 * load, 0.0, 1.2),
        }
        bank = rack_sensor_bank(spec.sensors, rng, n_chassis=6)
        matrix = reference_render(bank, latent, rng)
        power_latent = 0.3 + 0.65 * load + 0.2 * membw
        heat = reference_ema(power_latent, 40)
        heat += rng.normal(0.0, 0.004, size=t)
        components.append(
            ComponentData(
                name=f"rack{rack:02d}",
                matrix=matrix,
                sensor_names=bank.names,
                sensor_groups=bank.groups,
                target=heat,
                arch="rack",
            )
        )
    return SegmentData(spec, components, seed=seed)


def reference_generate_cross_architecture(
    seed: int | None = 0, *, t: int = 1600, scale: float = 1.0
) -> SegmentData:
    spec = get_segment_spec("cross-architecture")
    t = max(int(t * scale), 4 * spec.wl)
    label_names = application_names(include_idle=False)
    components = []
    for i, (arch, n_sensors, n_cores) in enumerate(ARCHITECTURES):
        rng = np.random.default_rng(
            np.random.SeedSequence([0 if seed is None else seed, 47, i])
        )
        schedule = build_schedule(
            t, rng, min_run=250, max_run=450, include_idle=False
        )
        latent, run_idx = _reference_concat_schedule_latents(schedule, rng)
        labels = _reference_labels_from_schedule(schedule, run_idx, label_names)
        bank = node_sensor_bank(
            n_sensors, rng, arch=arch, n_cores=min(n_cores, 8)
        )
        components.append(
            ComponentData(
                name=f"{arch}-node",
                matrix=reference_render(bank, latent, rng),
                sensor_names=bank.names,
                sensor_groups=bank.groups,
                labels=labels,
                arch=arch,
            )
        )
    return SegmentData(spec, components, label_names=label_names, seed=seed)


def reference_generate_gpu(
    seed: int | None = 0,
    *,
    t: int = 1400,
    gpus: int | None = None,
    scale: float = 1.0,
) -> SegmentData:
    from dataclasses import replace

    from repro.datasets.gpu import GPU_SPEC, gpu_sensor_bank

    spec = GPU_SPEC if gpus is None else replace(GPU_SPEC, nodes=int(gpus))
    t = max(int(t * scale), 4 * spec.wl)
    rng = np.random.default_rng(seed)
    schedule = build_schedule(t, rng, min_run=250, max_run=450, include_idle=True)
    latent, run_idx = _reference_concat_schedule_latents(schedule, rng)
    label_names = application_names(include_idle=False) + ("idle",)
    labels = _reference_labels_from_schedule(schedule, run_idx, label_names)

    components = []
    for dev in range(spec.nodes):
        dev_rng = np.random.default_rng(
            np.random.SeedSequence([0 if seed is None else seed, 97, dev])
        )
        gain = dev_rng.uniform(0.93, 1.07)
        dev_latent = {
            ch: np.clip(arr * gain + dev_rng.normal(0.0, 0.01, arr.shape), 0, 1.6)
            for ch, arr in latent.items()
        }
        bank = gpu_sensor_bank(spec.sensors_for(dev), dev_rng)
        components.append(
            ComponentData(
                name=f"gpu{dev}",
                matrix=reference_render(bank, dev_latent, dev_rng),
                sensor_names=bank.names,
                sensor_groups=bank.groups,
                labels=labels.copy(),
                arch="gpu",
            )
        )
    return SegmentData(spec, components, label_names=label_names, seed=seed)


REFERENCE_GENERATORS = {
    "fault": reference_generate_fault,
    "application": reference_generate_application,
    "power": reference_generate_power,
    "infrastructure": reference_generate_infrastructure,
    "cross-architecture": reference_generate_cross_architecture,
    "gpu": reference_generate_gpu,
}


def reference_generate_segment(
    name: str, seed: int | None = 0, **kwargs
) -> SegmentData:
    """Generate any segment through the frozen seed path."""
    if name == "gpu":
        return reference_generate_gpu(seed, **kwargs)
    spec = get_segment_spec(name)
    return REFERENCE_GENERATORS[spec.name](seed, **kwargs)

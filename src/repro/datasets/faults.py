"""Fault models for the Fault segment (eight faults, two settings each).

The HPC-ODA Fault segment derives from the Antarex fault-injection
dataset: a single compute node subjected to eight injected faults, "each
fault has two possible settings and reproduces various software or
hardware issues (e.g., CPU cache contention or memory allocation
errors)".

Each :class:`FaultModel` perturbs the latent workload channels and/or a
*small, specific* set of sensor groups.  The locality matters for
reproducing Figure 4: several faults are visible almost exclusively in
one or two error-counter sensors, so aggressive block averaging (small
``l``) dilutes them and fault-classification accuracy climbs with the
signature length — exactly the paper's observation that "fault
classification is dependent on the exact values of certain error
counters".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultModel", "FAULTS", "fault_names", "HEALTHY_LABEL"]

#: Class label of un-faulted operation.
HEALTHY_LABEL = "healthy"


@dataclass(frozen=True)
class FaultModel:
    """One injectable fault.

    Attributes
    ----------
    name:
        Fault label (the classification target).
    channel_effects:
        Additive perturbations of latent channels while the fault is
        active: ``{channel: delta}``, scaled by the setting intensity.
    sensor_effects:
        Additive perturbations applied directly to rendered sensors:
        ``{sensor_group: delta}``.  These model counters that only move
        when the fault is present (the "exact values of certain error
        counters" the paper mentions).
    intensities:
        The two setting strengths (low, high).
    """

    name: str
    channel_effects: dict[str, float] = field(default_factory=dict)
    sensor_effects: dict[str, float] = field(default_factory=dict)
    intensities: tuple[float, float] = (0.6, 1.0)

    def apply_channels(
        self,
        latent: dict[str, np.ndarray],
        start: int,
        stop: int,
        setting: int,
        rng: np.random.Generator,
    ) -> None:
        """Perturb latent channels in-place over ``[start, stop)``."""
        scale = self.intensities[setting % len(self.intensities)]
        for ch, delta in self.channel_effects.items():
            if ch not in latent:
                continue
            span = stop - start
            wobble = 1.0 + 0.1 * rng.standard_normal(span)
            latent[ch][start:stop] = np.clip(
                latent[ch][start:stop] + delta * scale * wobble, 0.0, 1.6
            )

    def apply_sensors(
        self,
        matrix: np.ndarray,
        group_indices: dict[str, np.ndarray],
        start: int,
        stop: int,
        setting: int,
        rng: np.random.Generator,
    ) -> None:
        """Perturb rendered sensor rows in-place over ``[start, stop)``."""
        scale = self.intensities[setting % len(self.intensities)]
        for group, delta in self.sensor_effects.items():
            rows = group_indices.get(group)
            if rows is None or rows.size == 0:
                continue
            span = stop - start
            bump = delta * scale * (
                1.0 + 0.15 * rng.standard_normal((rows.size, span))
            )
            # Fancy rows + slice columns: one strided add, no index grid.
            matrix[rows, start:stop] += bump


#: The eight fault models, patterned on the Antarex fault programs.
FAULTS: tuple[FaultModel, ...] = (
    # CPU interference: a rogue ALU-heavy process steals cycles.
    FaultModel(
        "cpuoccupy",
        channel_effects={"compute": 0.45, "freq": -0.08},
    ),
    # Cache contention (the paper's "CPU cache contention" example):
    # visible almost only in cache-miss counters.
    FaultModel(
        "cachecopy",
        channel_effects={"membw": 0.1},
        sensor_effects={"cache": 0.5},
    ),
    # Memory hog: steadily raises occupancy, eventually page faults.
    FaultModel(
        "memeater",
        channel_effects={"memory": 0.4},
        sensor_effects={"osfault": 0.25},
    ),
    # Memory allocation errors ("memory allocation errors" example):
    # only the allocation-failure counter reacts.
    FaultModel(
        "memalloc",
        sensor_effects={"memerror": 0.6},
    ),
    # I/O interference: a competing dd-style workload.
    FaultModel(
        "ioerr",
        channel_effects={"io": 0.3},
        sensor_effects={"ioerror": 0.55},
    ),
    # Network degradation: drops and retransmissions.
    FaultModel(
        "netdegrade",
        channel_effects={"net": -0.1},
        sensor_effects={"neterror": 0.5},
    ),
    # Forced CPU frequency reduction.
    FaultModel(
        "clockdown",
        channel_effects={"freq": -0.3, "compute": -0.1},
    ),
    # Page-fault storm via constant mmap/munmap churn.
    FaultModel(
        "pagefail",
        channel_effects={"memory": 0.05},
        sensor_effects={"osfault": 0.7},
    ),
)


def fault_names(include_healthy: bool = True) -> tuple[str, ...]:
    """Label set of the Fault segment (healthy first when included)."""
    names = tuple(f.name for f in FAULTS)
    return ((HEALTHY_LABEL,) + names) if include_healthy else names

"""Future-work extension: accelerator (GPU) sensor data.

The paper's first future-work item is "testing the CS method's
effectiveness when applied to accelerator sensor data (e.g., GPUs)".
This module adds a GPU telemetry model in the same style as the
compute-node banks: per-device sensors (SM/memory utilization, clocks,
framebuffer occupancy, PCIe traffic, power, temperature, fan, ECC error
counters) driven by the shared workload channels, plus a segment
generator for GPU-side application classification.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.datasets.generators import ComponentData, SegmentData
from repro.datasets.schema import SegmentSpec
from repro.datasets.sensors import SensorBank, SensorSpec, render_batch
from repro.datasets.workloads import application_names, build_schedule

__all__ = ["GPU_SPEC", "gpu_sensor_bank", "generate_gpu"]

#: Extension segment descriptor (not part of Table I).
GPU_SPEC = SegmentSpec(
    name="gpu",
    system="Future-work GPU testbed",
    nodes=4,
    sensors=24,
    sampling_interval_s=1.0,
    wl=30,
    ws=5,
    task="classification",
)

#: (name, group, weights, offset, gain, noise, lag)
_GPU_TEMPLATES: tuple[tuple, ...] = (
    ("gpu_utilization", "gpu", {"compute": 1.0}, 0.03, 1.0, 0.03, 0),
    ("sm_active_cycles", "gpu", {"compute": 0.9, "freq": 0.2}, 0.03, 1.0, 0.03, 0),
    ("sm_occupancy", "gpu", {"compute": 0.8}, 0.05, 1.0, 0.03, 2),
    ("sm_clock", "gpu", {"freq": 1.0}, 0.0, 1.0, 0.01, 0),
    ("mem_clock", "gpu", {"freq": 0.6, "membw": 0.2}, 0.2, 1.0, 0.01, 0),
    ("fb_mem_used", "gpumem", {"memory": 1.0}, 0.08, 1.0, 0.01, 2),
    ("fb_mem_free", "gpumem", {"memory": -1.0}, 1.1, 1.0, 0.01, 2),
    ("mem_utilization", "gpumem", {"membw": 1.0}, 0.03, 1.0, 0.03, 0),
    ("l2_cache_hits", "gpumem", {"membw": 0.7, "compute": 0.2}, 0.05, 1.0, 0.04, 0),
    ("pcie_tx_bytes", "gpuio", {"net": 0.8, "io": 0.3}, 0.02, 1.0, 0.04, 0),
    ("pcie_rx_bytes", "gpuio", {"net": 0.7, "io": 0.4}, 0.02, 1.0, 0.04, 0),
    ("nvlink_tx_bytes", "gpuio", {"net": 1.0}, 0.01, 1.0, 0.04, 0),
    ("nvlink_rx_bytes", "gpuio", {"net": 0.95}, 0.01, 1.0, 0.04, 0),
    ("gpu_power", "gpupower", {"compute": 0.65, "membw": 0.2, "freq": 0.15},
     0.2, 1.0, 0.02, 3),
    ("gpu_energy_rate", "gpupower", {"compute": 0.6, "membw": 0.25}, 0.2, 1.0,
     0.02, 3),
    ("gpu_temp", "gputemp", {"compute": 0.5, "membw": 0.15}, 0.3, 1.0, 0.01, 40),
    ("hbm_temp", "gputemp", {"membw": 0.45}, 0.3, 1.0, 0.01, 35),
    ("fan_speed", "gputemp", {"compute": 0.4}, 0.3, 1.0, 0.02, 50),
    ("ecc_sbe_count", "gpuerror", {}, 0.01, 1.0, 0.015, 0),
    ("ecc_dbe_count", "gpuerror", {}, 0.005, 1.0, 0.01, 0),
    ("xid_events", "gpuerror", {}, 0.005, 1.0, 0.01, 0),
    ("pstate_residency", "gpu", {"freq": 0.9}, 0.05, 1.0, 0.02, 5),
    ("encoder_util", "gpu", {"io": 0.3}, 0.02, 1.0, 0.03, 0),
    ("decoder_util", "gpu", {"io": 0.25}, 0.02, 1.0, 0.03, 0),
)


def gpu_sensor_bank(
    n_sensors: int, rng: np.random.Generator, *, prefix: str = ""
) -> SensorBank:
    """A GPU device's sensor bank (up to 24 template sensors + filler)."""
    specs: list[SensorSpec] = []
    for name, group, weights, offset, gain, noise, lag in _GPU_TEMPLATES:
        if len(specs) >= n_sensors:
            break
        specs.append(
            SensorSpec(
                name=f"{prefix}{name}",
                group=group,
                weights={
                    ch: w * float(rng.uniform(0.95, 1.05))
                    for ch, w in weights.items()
                },
                offset=offset,
                gain=gain,
                noise=noise,
                lag=lag,
            )
        )
    filler = 0
    while len(specs) < n_sensors:
        specs.append(
            SensorSpec(
                name=f"{prefix}gpu_misc_{filler}",
                group="gpumisc",
                weights={"compute": float(rng.uniform(0.1, 0.4))},
                offset=float(rng.uniform(0.0, 0.3)),
                noise=float(rng.uniform(0.04, 0.08)),
            )
        )
        filler += 1
    return SensorBank(specs)


def generate_gpu(
    seed: int | None = 0,
    *,
    t: int = 1400,
    gpus: int | None = None,
    scale: float = 1.0,
) -> SegmentData:
    """GPU extension segment: per-device telemetry + application labels.

    The same shared job schedule drives all GPUs in the node (data-
    parallel execution), mirroring the Application segment's structure at
    the accelerator level.
    """
    spec = GPU_SPEC if gpus is None else replace(GPU_SPEC, nodes=int(gpus))
    t = max(int(t * scale), 4 * spec.wl)
    rng = np.random.default_rng(seed)
    schedule = build_schedule(t, rng, min_run=250, max_run=450, include_idle=True)
    from repro.datasets.generators import (
        _concat_schedule_latents,
        _labels_from_schedule,
    )

    latent, run_idx = _concat_schedule_latents(schedule, rng)
    label_names = application_names(include_idle=False) + ("idle",)
    labels = _labels_from_schedule(schedule, run_idx, label_names)

    # Per-device draws in sequential order, one batched render for the
    # whole accelerator plane (same pattern as the Application segment).
    banks, dev_latents, noises = [], [], []
    for dev in range(spec.nodes):
        dev_rng = np.random.default_rng(
            np.random.SeedSequence([0 if seed is None else seed, 97, dev])
        )
        gain = dev_rng.uniform(0.93, 1.07)
        dev_latents.append(
            {
                ch: np.clip(
                    arr * gain + dev_rng.normal(0.0, 0.01, arr.shape), 0, 1.6
                )
                for ch, arr in latent.items()
            }
        )
        bank = gpu_sensor_bank(spec.sensors_for(dev), dev_rng)
        banks.append(bank)
        noises.append(dev_rng.standard_normal((len(bank), t)))
    components = [
        ComponentData(
            name=f"gpu{dev}",
            matrix=matrix,
            sensor_names=bank.names,
            sensor_groups=bank.groups,
            labels=labels.copy(),
            arch="gpu",
        )
        for dev, (bank, matrix) in enumerate(
            zip(banks, render_batch(banks, dev_latents, noises))
        )
    ]
    return SegmentData(spec, components, label_names=label_names, seed=seed)

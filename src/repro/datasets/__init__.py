"""Synthetic HPC-ODA dataset collection (telemetry simulator).

The paper evaluates on **HPC-ODA**, five real monitoring-data segments
captured at LRZ / ETH (Table I).  Those traces are not available offline,
so this subpackage *simulates* them: a parametric telemetry generator
produces sensor matrices with the structural properties the evaluation
depends on — cross-sensor correlation driven by shared workload state,
application-specific temporal patterns, fault-localized anomalies, and
architecture-specific sensor sets.  See DESIGN.md §2/§4 for the
substitution rationale.

Layout
------
``schema``      Segment descriptors mirroring Table I.
``sensors``     Sensor response models (how latent activity becomes readings).
``workloads``   Application workload models (AMG, Kripke, LAMMPS, ...).
``faults``      The eight fault models of the Fault segment.
``windows``     Window extraction and label/target alignment.
``generators``  The five segment generators + windowed ML dataset builders.
``recipes``     Declarative, content-addressable dataset recipes.

Generation runs through the batched scan engine (``repro.engine.scan``):
whole node/rack/device planes render in one grouped pass and the
sequential recurrences (sensor lag EMA, OU load drift, the power
oscillator) evaluate as chunked affine scans.  Per-seed RNG draw order
matches the frozen sample-by-sample reference
(``datasets/_seed_reference.py``) bit for bit, numerics to
``rtol <= 1e-10``; ``DATAGEN_VERSION`` versions the numerics in every
artifact-cache key.
"""

from repro.datasets.generators import (
    DATAGEN_VERSION,
    SegmentData,
    WindowedDataset,
    generate_application,
    generate_cross_architecture,
    generate_fault,
    generate_infrastructure,
    generate_power,
    generate_segment,
)
from repro.datasets.gpu import GPU_SPEC, generate_gpu
from repro.datasets.recipes import DatasetRecipe, recipe
from repro.datasets.schema import (
    ARCHITECTURES,
    SEGMENTS,
    SegmentSpec,
    get_segment_spec,
)
from repro.datasets.windows import (
    future_mean_target,
    window_majority_labels,
    window_starts,
)

__all__ = [
    "ARCHITECTURES",
    "DATAGEN_VERSION",
    "DatasetRecipe",
    "GPU_SPEC",
    "SEGMENTS",
    "SegmentData",
    "SegmentSpec",
    "WindowedDataset",
    "future_mean_target",
    "generate_application",
    "generate_cross_architecture",
    "generate_fault",
    "generate_gpu",
    "generate_infrastructure",
    "generate_power",
    "generate_segment",
    "get_segment_spec",
    "recipe",
    "window_majority_labels",
    "window_starts",
]

"""Sensor response models: latent activity -> monitoring readings.

A :class:`SensorSpec` describes how one monitoring metric responds to the
latent workload channels (linear mixing weights), with an offset, gain,
response lag (exponential smoothing, modelling thermal inertia and OS
averaging) and additive Gaussian noise.  A :class:`SensorBank` renders a
whole component's sensor matrix in one vectorized pass.

Banks are built from template libraries that mirror what HPC-ODA
contains: "CPU performance counters (e.g., from the perfevent Linux
interface), as well as memory and OS-related metrics (e.g., from the proc
file system) ... whereas the Infrastructure segment includes cooling and
power-related data".  Per-architecture scale factors make the same
workload look different on Skylake / Knights Landing / Rome nodes, which
is what the Cross-Architecture experiment exercises.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.datasets.workloads import CHANNELS
from repro.engine.scan import ema_scan

__all__ = [
    "SensorSpec",
    "SensorBank",
    "node_sensor_bank",
    "rack_sensor_bank",
    "render_batch",
    "NODE_TEMPLATES",
]


@dataclass(frozen=True)
class SensorSpec:
    """Response model of one sensor.

    ``reading(t) = offset + gain * sum_c weights[c] * smooth(latent_c, lag)(t)
    + noise * N(0,1)``, optionally clipped at zero (most hardware counters
    cannot go negative).
    """

    name: str
    group: str
    weights: dict[str, float] = field(default_factory=dict)
    offset: float = 0.0
    gain: float = 1.0
    noise: float = 0.02
    lag: int = 0
    clip_zero: bool = True

    def __post_init__(self):
        for ch in self.weights:
            if ch not in CHANNELS:
                raise ValueError(f"sensor {self.name!r}: unknown channel {ch!r}")


def _smooth_matrix(x: np.ndarray, lag: int) -> np.ndarray:
    """Exponential smoothing along the last axis (batched affine scan)."""
    if lag <= 1:
        return x
    return ema_scan(x, lag)


class SensorBank:
    """An ordered collection of sensors for one monitored component."""

    def __init__(self, specs: list[SensorSpec]):
        if not specs:
            raise ValueError("a sensor bank needs at least one sensor")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate sensor names in bank")
        self.specs = list(specs)
        # Pre-assemble the mixing matrix (n_sensors, n_channels) and the
        # per-sensor parameter vectors for vectorized rendering.
        self._mix = np.zeros((len(specs), len(CHANNELS)))
        for i, s in enumerate(specs):
            for ch, w in s.weights.items():
                self._mix[i, CHANNELS.index(ch)] = w
        self._offset = np.array([s.offset for s in specs])
        self._gain = np.array([s.gain for s in specs])
        self._noise = np.array([s.noise for s in specs])
        self._lags = np.array([max(s.lag, 0) for s in specs])
        self._clip = np.array([s.clip_zero for s in specs])

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    @property
    def groups(self) -> tuple[str, ...]:
        return tuple(s.group for s in self.specs)

    def indices_of_group(self, group: str) -> np.ndarray:
        """Row indices of all sensors in ``group``."""
        return np.flatnonzero(np.array([s.group == group for s in self.specs]))

    def render(
        self, latent: dict[str, np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        """Produce the sensor matrix ``(n_sensors, t)`` for latent input."""
        t = _latent_length(latent)
        noise = rng.standard_normal((len(self.specs), t))
        return render_batch([self], [latent], [noise])[0]


def _latent_length(latent: dict[str, np.ndarray]) -> int:
    """Time-axis length of a latent-channel dict (validated)."""
    for ch in CHANNELS:
        if ch in latent:
            return int(np.asarray(latent[ch]).shape[0])
    raise ValueError("latent input contains no known channels")


def _latent_matrix(latent: dict[str, np.ndarray], t: int) -> np.ndarray:
    """Stack a latent dict into the ``(n_channels, t)`` mixing input."""
    L = np.zeros((len(CHANNELS), t))
    for j, ch in enumerate(CHANNELS):
        if ch in latent:
            arr = np.asarray(latent[ch], dtype=np.float64)
            if arr.shape != (t,):
                raise ValueError(
                    f"channel {ch!r} has shape {arr.shape}, expected ({t},)"
                )
            L[j] = arr
    return L


def render_batch(
    banks: Sequence[SensorBank],
    latents: Sequence[dict[str, np.ndarray]],
    noises: Sequence[np.ndarray],
) -> list[np.ndarray]:
    """Render many components' sensor matrices in one fleet-wide pass.

    ``noises[i]`` is component ``i``'s pre-drawn standard-normal matrix
    of shape ``(len(banks[i]), t)`` — callers draw it from the
    component's own RNG at the same position in the stream the sequential
    path did, which keeps per-seed draw *order* (and therefore labels,
    schedules and fault episodes) bit-identical while the arithmetic is
    batched.  All components must share the time axis; banks may differ
    in size (heterogeneous architectures render through one grouped
    smoothing pass regardless).
    """
    if not (len(banks) == len(latents) == len(noises)):
        raise ValueError("banks, latents and noises must align")
    if not banks:
        return []
    t = _latent_length(latents[0])
    for latent in latents[1:]:
        if _latent_length(latent) != t:
            raise ValueError("components have unequal time-axis lengths")
    sizes = [len(b) for b in banks]
    for bank, noise, size in zip(banks, noises, sizes):
        if noise.shape != (size, t):
            raise ValueError(
                f"noise shape {noise.shape} does not match ({size}, {t})"
            )
    # Mixing: one batched matmul when the fleet is homogeneous (equal
    # bank sizes — the application / GPU / rack fleets), else per-bank.
    stacked_L = [_latent_matrix(latent, t) for latent in latents]
    if len(set(sizes)) == 1:
        raw = np.matmul(
            np.stack([b._mix for b in banks]), np.stack(stacked_L)
        ).reshape(-1, t)
    else:
        raw = np.concatenate(
            [b._mix @ L for b, L in zip(banks, stacked_L)], axis=0
        )
    # One grouped smoothing pass over every (component, sensor) row in
    # the fleet: each distinct response lag scans once.
    lags = np.concatenate([b._lags for b in banks])
    for lag in np.unique(lags):
        if lag > 1:
            rows = lags == lag
            raw[rows] = _smooth_matrix(raw[rows], int(lag))
    offset = np.concatenate([b._offset for b in banks])
    gain = np.concatenate([b._gain for b in banks])
    noise_sd = np.concatenate([b._noise for b in banks])
    clip = np.concatenate([b._clip for b in banks])
    out = offset[:, None] + gain[:, None] * raw
    out += noise_sd[:, None] * np.concatenate(noises, axis=0)
    np.maximum(out, 0.0, where=clip[:, None], out=out)
    bounds = np.cumsum([0] + sizes)
    return [out[a:b] for a, b in zip(bounds[:-1], bounds[1:])]


# ----------------------------------------------------------------------
# Compute-node sensor templates
# ----------------------------------------------------------------------
#: (name, group, weights, offset, gain, noise, lag)
NODE_TEMPLATES: tuple[tuple, ...] = (
    ("cpu_instructions", "cpu", {"compute": 1.0}, 0.05, 1.0, 0.03, 0),
    ("cpu_cycles", "cpu", {"compute": 0.85, "freq": 0.3}, 0.05, 1.0, 0.03, 0),
    ("cpu_load", "os", {"compute": 1.0}, 0.02, 1.0, 0.02, 5),
    ("cpu_frequency", "cpu", {"freq": 1.0}, 0.0, 1.0, 0.01, 0),
    ("branch_misses", "cpu", {"compute": 0.5, "membw": 0.2}, 0.02, 1.0, 0.04, 0),
    ("cache_l1_misses", "cache", {"membw": 0.75, "compute": 0.1}, 0.03, 1.0, 0.04, 0),
    ("cache_l2_misses", "cache", {"membw": 0.9}, 0.02, 1.0, 0.04, 0),
    ("cache_l3_misses", "cache", {"membw": 1.0}, 0.02, 1.0, 0.05, 0),
    ("mem_used", "memory", {"memory": 1.0}, 0.1, 1.0, 0.01, 2),
    ("mem_free", "memory", {"memory": -1.0}, 1.1, 1.0, 0.01, 2),
    ("mem_cached", "memory", {"memory": 0.35, "io": 0.4}, 0.15, 1.0, 0.02, 4),
    ("mem_bandwidth", "memory", {"membw": 1.0}, 0.02, 1.0, 0.03, 0),
    ("page_faults", "osfault", {"memory": 0.25, "io": 0.15}, 0.02, 1.0, 0.05, 0),
    ("ctx_switches", "os", {"compute": 0.3, "io": 0.4, "net": 0.2}, 0.05, 1.0, 0.04, 0),
    ("procs_running", "os", {"compute": 0.8}, 0.05, 1.0, 0.03, 3),
    ("io_read_bytes", "io", {"io": 1.0}, 0.01, 1.0, 0.04, 0),
    ("io_write_bytes", "io", {"io": 0.8, "memory": 0.05}, 0.01, 1.0, 0.04, 0),
    ("io_errors", "ioerror", {}, 0.01, 1.0, 0.015, 0),
    ("net_xmit_bytes", "net", {"net": 1.0}, 0.01, 1.0, 0.04, 0),
    ("net_recv_bytes", "net", {"net": 0.95}, 0.01, 1.0, 0.04, 0),
    ("net_drops", "neterror", {}, 0.01, 1.0, 0.015, 0),
    ("power_node", "power", {"compute": 0.6, "membw": 0.25, "freq": 0.15}, 0.25, 1.0, 0.02, 2),
    ("power_dram", "power", {"membw": 0.6, "memory": 0.2}, 0.1, 1.0, 0.02, 2),
    ("temp_cpu", "temp", {"compute": 0.55, "membw": 0.15}, 0.3, 1.0, 0.01, 30),
    ("temp_board", "temp", {"compute": 0.3, "membw": 0.1}, 0.35, 1.0, 0.01, 60),
    ("alloc_failures", "memerror", {}, 0.01, 1.0, 0.015, 0),
)


def node_sensor_bank(
    n_sensors: int,
    rng: np.random.Generator,
    *,
    arch: str = "skylake",
    n_cores: int = 0,
    prefix: str = "",
) -> SensorBank:
    """Build a compute-node sensor bank with ``n_sensors`` sensors.

    The base templates come first; per-core CPU sensors (``n_cores`` > 0
    distributes them over cores) and generic mixed-response sensors fill
    the remainder, so any Table I sensor count can be met.  Architecture
    selects deterministic gain/offset biases so that the *same* workload
    produces differently scaled readings per architecture, while a bank's
    exact composition is drawn from ``rng``.
    """
    # zlib.crc32, not hash(): string hashing is salted per process
    # (PYTHONHASHSEED), which would make "deterministic" generation differ
    # between processes — fatal for the content-addressed artifact cache
    # and for byte-identical re-runs.
    arch_rng = np.random.default_rng(zlib.crc32(arch.encode("utf-8")))
    arch_gain = arch_rng.uniform(0.7, 1.3, size=len(CHANNELS))
    specs: list[SensorSpec] = []

    def scaled_weights(weights: dict[str, float]) -> dict[str, float]:
        return {
            ch: w * arch_gain[CHANNELS.index(ch)] for ch, w in weights.items()
        }

    for name, group, weights, offset, gain, noise, lag in NODE_TEMPLATES:
        if len(specs) >= n_sensors:
            break
        specs.append(
            SensorSpec(
                name=f"{prefix}{name}",
                group=group,
                weights=scaled_weights(weights),
                offset=offset * float(arch_rng.uniform(0.9, 1.1)),
                gain=gain * float(rng.uniform(0.95, 1.05)),
                noise=noise,
                lag=lag,
            )
        )

    # Per-core counters: instructions / cycles / frequency per core group.
    core = 0
    core_templates = (
        ("core{}_instructions", "cpu", {"compute": 1.0}, 0.04, 0.03),
        ("core{}_cycles", "cpu", {"compute": 0.8, "freq": 0.3}, 0.04, 0.03),
        ("core{}_frequency", "cpu", {"freq": 1.0}, 0.0, 0.01),
    )
    while len(specs) < n_sensors and core < max(n_cores, 0):
        for tmpl_name, group, weights, offset, noise in core_templates:
            if len(specs) >= n_sensors:
                break
            specs.append(
                SensorSpec(
                    name=f"{prefix}{tmpl_name.format(core)}",
                    group=group,
                    weights=scaled_weights(
                        {ch: w * float(rng.uniform(0.85, 1.15)) for ch, w in weights.items()}
                    ),
                    offset=offset,
                    gain=1.0,
                    noise=noise,
                )
            )
        core += 1

    # Generic filler metrics: random sparse channel mixes + extra noise,
    # standing in for the long tail of /proc and perfevent metrics.
    filler = 0
    while len(specs) < n_sensors:
        k = int(rng.integers(1, 3))
        chans = rng.choice(len(CHANNELS) - 1, size=k, replace=False)
        weights = {
            CHANNELS[int(c)]: float(rng.uniform(0.1, 0.5)) for c in chans
        }
        specs.append(
            SensorSpec(
                name=f"{prefix}misc_metric_{filler}",
                group="misc",
                weights=scaled_weights(weights),
                offset=float(rng.uniform(0.0, 0.3)),
                gain=1.0,
                noise=float(rng.uniform(0.04, 0.1)),
                lag=int(rng.integers(0, 4)),
            )
        )
        filler += 1
    return SensorBank(specs)


# ----------------------------------------------------------------------
# Infrastructure (rack-level) sensor templates
# ----------------------------------------------------------------------
_RACK_TEMPLATES: tuple[tuple, ...] = (
    ("water_temp_inlet", "cooling", {}, 0.45, 1.0, 0.01, 0),
    ("water_temp_outlet", "cooling", {"compute": 0.35, "membw": 0.1}, 0.5, 1.0, 0.01, 40),
    ("water_flow", "cooling", {"compute": 0.2}, 0.55, 1.0, 0.02, 20),
    ("pump_speed", "cooling", {"compute": 0.25}, 0.4, 1.0, 0.02, 25),
    ("rack_power", "power", {"compute": 0.65, "membw": 0.2, "freq": 0.1}, 0.3, 1.0, 0.02, 5),
    ("pdu_current", "power", {"compute": 0.6, "membw": 0.2}, 0.25, 1.0, 0.02, 5),
    ("pdu_voltage", "power", {}, 0.95, 1.0, 0.005, 0),
    ("ambient_temp", "environment", {}, 0.4, 1.0, 0.01, 0),
    ("humidity", "environment", {}, 0.5, 1.0, 0.01, 0),
)


def rack_sensor_bank(
    n_sensors: int,
    rng: np.random.Generator,
    *,
    n_chassis: int = 4,
    prefix: str = "",
) -> SensorBank:
    """Build a rack-level bank: cooling/power plus chassis sensors.

    Mirrors the Infrastructure segment: rack-level power distribution and
    warm-water cooling sensors, "with some sensors being at the chassis
    level".
    """
    specs: list[SensorSpec] = []
    for name, group, weights, offset, gain, noise, lag in _RACK_TEMPLATES:
        if len(specs) >= n_sensors:
            break
        specs.append(
            SensorSpec(
                name=f"{prefix}{name}",
                group=group,
                weights={ch: w * float(rng.uniform(0.95, 1.05)) for ch, w in weights.items()},
                offset=offset,
                gain=gain,
                noise=noise,
                lag=lag,
            )
        )
    chassis = 0
    while len(specs) < n_sensors:
        c = chassis % max(n_chassis, 1)
        kind = chassis // max(n_chassis, 1)
        if kind % 2 == 0:
            spec = SensorSpec(
                name=f"{prefix}chassis{c}_power_{kind // 2}",
                group="power",
                weights={
                    "compute": 0.55 * float(rng.uniform(0.9, 1.1)),
                    "membw": 0.2,
                },
                offset=0.25,
                noise=0.03,
                lag=4,
            )
        else:
            spec = SensorSpec(
                name=f"{prefix}chassis{c}_temp_{kind // 2}",
                group="temp",
                weights={"compute": 0.4 * float(rng.uniform(0.9, 1.1))},
                offset=0.35,
                noise=0.015,
                lag=35,
            )
        specs.append(spec)
        chassis += 1
    return SensorBank(specs)

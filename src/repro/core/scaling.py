"""Signature rescaling (the Portability / Comparability property).

CS signatures "can be scaled at will using traditional image processing
algorithms" (Section III-C.3): because block ``i`` always covers the sensor
range ``[(i-1)*n/l, i*n/l]`` of the *sorted* matrix, a signature of length
``l1`` and one of length ``l2`` describe the same axis at different
resolutions.  Resampling along that axis therefore lets operators train a
model at one resolution and feed it signatures computed at another — e.g.
train on low-resolution signatures and down-scale high-resolution ones at
inference time.

We implement linear interpolation over block *centers* (the natural
image-resize), plus the paper's suggested aggressive compression of
dropping central (least informative) blocks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rescale_signature", "rescale_signature_matrix", "drop_central_blocks"]


def _block_centers(l: int) -> np.ndarray:
    """Normalized center coordinate of each of ``l`` blocks in ``[0, 1]``."""
    return (np.arange(l) + 0.5) / l


def rescale_signature(signature: np.ndarray, new_length: int) -> np.ndarray:
    """Resample a single signature to ``new_length`` blocks.

    Real and imaginary parts are interpolated independently with linear
    interpolation over block centers; edge blocks are extended with their
    own value (nearest) beyond the outermost centers.

    Parameters
    ----------
    signature:
        Complex (or real) signature of shape ``(l,)``.
    new_length:
        Target number of blocks, ``>= 1``.

    Returns
    -------
    numpy.ndarray
        Signature of shape ``(new_length,)``, same kind (complex in,
        complex out).
    """
    sig = np.asarray(signature)
    if sig.ndim != 1:
        raise ValueError(f"signature must be 1-D, got shape {sig.shape}")
    if new_length < 1:
        raise ValueError("new_length must be >= 1")
    l = sig.shape[0]
    if new_length == l:
        return sig.copy()
    src = _block_centers(l)
    dst = _block_centers(new_length)
    if np.iscomplexobj(sig):
        out = np.empty(new_length, dtype=np.complex128)
        out.real = np.interp(dst, src, sig.real)
        out.imag = np.interp(dst, src, sig.imag)
        return out
    return np.interp(dst, src, sig.astype(np.float64))


def rescale_signature_matrix(signatures: np.ndarray, new_length: int) -> np.ndarray:
    """Resample every row of a ``(num_windows, l)`` signature matrix.

    Vectorized equivalent of applying :func:`rescale_signature` to each
    row; used to feed down-scaled high-resolution signatures to a model
    trained at lower resolution (or vice versa).
    """
    sigs = np.asarray(signatures)
    if sigs.ndim != 2:
        raise ValueError(f"signature matrix must be 2-D, got shape {sigs.shape}")
    l = sigs.shape[1]
    if new_length == l:
        return sigs.copy()
    src = _block_centers(l)
    dst = _block_centers(new_length)
    # np.interp is 1-D only; build the interpolation as a sparse matmul:
    # each destination center is a convex combination of at most two
    # sources, so we materialize the (new_length, l) weight matrix once.
    idx = np.searchsorted(src, dst, side="right")
    idx = np.clip(idx, 1, l - 1) if l > 1 else np.zeros_like(idx)
    weights = np.zeros((new_length, l))
    if l == 1:
        weights[:, 0] = 1.0
    else:
        x0 = src[idx - 1]
        x1 = src[idx]
        frac = np.clip((dst - x0) / (x1 - x0), 0.0, 1.0)
        rows = np.arange(new_length)
        weights[rows, idx - 1] = 1.0 - frac
        weights[rows, idx] = frac
    return sigs @ weights.T


def drop_central_blocks(signature: np.ndarray, keep: int) -> np.ndarray:
    """Aggressive compression: keep only the outer ``keep`` blocks.

    The central signature coefficients "represent the least insightful
    sensors in the system" and "can be potentially eliminated with minimal
    loss of information".  This keeps ``ceil(keep/2)`` blocks from the top
    of the signature and ``floor(keep/2)`` from the bottom.

    Parameters
    ----------
    signature:
        Signature vector of shape ``(l,)`` (or matrix ``(num, l)``, applied
        row-wise).
    keep:
        Number of blocks to retain, ``1 <= keep <= l``.
    """
    sig = np.asarray(signature)
    l = sig.shape[-1]
    if not 1 <= keep <= l:
        raise ValueError(f"keep must be in [1, {l}], got {keep}")
    head = (keep + 1) // 2
    tail = keep - head
    if tail == 0:
        return sig[..., :head].copy()
    return np.concatenate([sig[..., :head], sig[..., l - tail :]], axis=-1)

"""The CS model artefact: permutation vector plus normalization bounds.

The training stage of the CS algorithm (Section III-C.1 of the paper)
produces two data structures:

* a **permutation vector** ``p`` that re-orders sensor rows so that
  correlated sensors become adjacent, and
* per-row **lower/upper bounds** used for min-max normalization.

Together these form a *CS model*, which "can be stored and re-used for the
subsequent stages of the algorithm".  This module provides that artefact as
a small dataclass with JSON persistence so that models can be shipped
between systems (the Portability requirement).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

__all__ = ["CSModel"]


@dataclass
class CSModel:
    """Trained state of the Correlation-wise Smoothing algorithm.

    Parameters
    ----------
    permutation:
        Integer array of shape ``(n,)``; ``permutation[k]`` is the index of
        the original sensor row placed at sorted position ``k``.  The first
        entries are the rows that best describe the system state, the
        middle entries are noise-like rows, and the final entries are rows
        anti-correlated with the first ones.
    lower:
        Per-row minima (shape ``(n,)``), in *original* row order.
    upper:
        Per-row maxima (shape ``(n,)``), in *original* row order.
    sensor_names:
        Optional human-readable names for the original rows; used by the
        root-cause analysis helpers to translate block indices back into
        sensor names.
    """

    permutation: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    sensor_names: tuple[str, ...] | None = None
    _inverse: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.permutation = np.asarray(self.permutation, dtype=np.intp)
        self.lower = np.asarray(self.lower, dtype=np.float64)
        self.upper = np.asarray(self.upper, dtype=np.float64)
        n = self.permutation.shape[0]
        if self.permutation.ndim != 1:
            raise ValueError("permutation must be one-dimensional")
        if self.lower.shape != (n,) or self.upper.shape != (n,):
            raise ValueError(
                f"bounds shape mismatch: permutation has {n} rows, "
                f"lower {self.lower.shape}, upper {self.upper.shape}"
            )
        if np.any(np.sort(self.permutation) != np.arange(n)):
            raise ValueError("permutation is not a permutation of 0..n-1")
        if np.any(self.upper < self.lower):
            raise ValueError("upper bounds must be >= lower bounds")
        if self.sensor_names is not None:
            self.sensor_names = tuple(self.sensor_names)
            if len(self.sensor_names) != n:
                raise ValueError(
                    f"{len(self.sensor_names)} sensor names for {n} rows"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_sensors(self) -> int:
        """Number of sensor rows this model was trained on."""
        return int(self.permutation.shape[0])

    @property
    def inverse_permutation(self) -> np.ndarray:
        """Inverse of :attr:`permutation` (sorted position of each row)."""
        if self._inverse is None:
            inv = np.empty_like(self.permutation)
            inv[self.permutation] = np.arange(self.permutation.shape[0])
            self._inverse = inv
        return self._inverse

    def sorted_names(self) -> tuple[str, ...] | None:
        """Sensor names in sorted (permuted) order, if names are known."""
        if self.sensor_names is None:
            return None
        return tuple(self.sensor_names[i] for i in self.permutation)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dictionary."""
        return {
            "format": "cs-model/v1",
            "permutation": self.permutation.tolist(),
            "lower": self.lower.tolist(),
            "upper": self.upper.tolist(),
            "sensor_names": list(self.sensor_names)
            if self.sensor_names is not None
            else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CSModel":
        """Deserialize from :meth:`to_dict` output."""
        if payload.get("format") != "cs-model/v1":
            raise ValueError(f"unsupported CS model format: {payload.get('format')!r}")
        names = payload.get("sensor_names")
        return cls(
            permutation=np.asarray(payload["permutation"], dtype=np.intp),
            lower=np.asarray(payload["lower"], dtype=np.float64),
            upper=np.asarray(payload["upper"], dtype=np.float64),
            sensor_names=tuple(names) if names is not None else None,
        )

    def save(self, path: str | Path) -> None:
        """Write the model to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "CSModel":
        """Read a model previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    # ------------------------------------------------------------------
    # Robustness against sensor-set changes (Portability requirement)
    # ------------------------------------------------------------------
    def subset(self, keep: Sequence[int]) -> "CSModel":
        """Restrict the model to a subset of the original sensor rows.

        This supports the paper's robustness claim: when sensors are
        removed from the monitoring configuration, the trained model can be
        restricted instead of retrained.  ``keep`` lists the original row
        indices to retain; the relative sorted order of the survivors is
        preserved.
        """
        keep_arr = np.unique(np.asarray(keep, dtype=np.intp))
        if keep_arr.size == 0:
            raise ValueError("cannot subset a CS model to zero sensors")
        if keep_arr.min() < 0 or keep_arr.max() >= self.n_sensors:
            raise ValueError("subset indices out of range")
        # Map old row index -> new row index.
        remap = -np.ones(self.n_sensors, dtype=np.intp)
        remap[keep_arr] = np.arange(keep_arr.size)
        surviving = self.permutation[np.isin(self.permutation, keep_arr)]
        names = (
            tuple(self.sensor_names[i] for i in keep_arr)
            if self.sensor_names is not None
            else None
        )
        return CSModel(
            permutation=remap[surviving],
            lower=self.lower[keep_arr],
            upper=self.upper[keep_arr],
            sensor_names=names,
        )

"""Sorting stage of the CS algorithm (Section III-C.2).

Any time a signature is computed from a window ``Sw`` of the sensor
matrix, the sorting stage first applies **min-max normalization** using
the bounds stored in the CS model and then permutes the rows with the
model's permutation vector.  As the paper notes, "simply re-arranging the
rows in S brings clear visual patterns to the surface".

Complexity is ``O(wl * n)``, dominated by the normalization — a single
vectorized subtract/divide pass here.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import CSModel

__all__ = ["normalize_rows", "sort_rows"]


def normalize_rows(
    Sw: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    clip: bool = True,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Min-max normalize each row of ``Sw`` to ``[0, 1]``.

    Rows whose stored bounds collapse (``upper == lower``, i.e. the sensor
    was constant during training) are mapped to the neutral value 0.5 so
    they carry no information, mirroring their role in the ordering.

    Parameters
    ----------
    Sw:
        Window of shape ``(n, wl)``.
    lower, upper:
        Per-row bounds of shape ``(n,)`` (from the CS model, original row
        order).
    clip:
        When true (the default, and what an online deployment needs),
        values outside the training bounds are clipped into ``[0, 1]``.
    out:
        Optional preallocated float64 output array of shape ``(n, wl)``;
        pass ``Sw`` itself for in-place operation on float64 input.

    Returns
    -------
    numpy.ndarray
        Normalized window, float64, shape ``(n, wl)``.
    """
    Sw = np.asarray(Sw, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if Sw.ndim != 2:
        raise ValueError(f"window must be 2-D, got shape {Sw.shape}")
    n = Sw.shape[0]
    if lower.shape != (n,) or upper.shape != (n,):
        raise ValueError(
            f"bounds shape mismatch: window has {n} rows, "
            f"lower {lower.shape}, upper {upper.shape}"
        )
    span = upper - lower
    degenerate = span <= 0.0
    safe_span = np.where(degenerate, 1.0, span)
    if out is None:
        out = np.empty_like(Sw)
    np.subtract(Sw, lower[:, None], out=out)
    np.divide(out, safe_span[:, None], out=out)
    if degenerate.any():
        out[degenerate, :] = 0.5
    if clip:
        np.clip(out, 0.0, 1.0, out=out)
    return out


def sort_rows(Sw: np.ndarray, model: CSModel, *, clip: bool = True) -> np.ndarray:
    """Apply the full sorting stage: normalize then permute rows.

    Parameters
    ----------
    Sw:
        Window of shape ``(n, wl)`` in *original* row order.
    model:
        Trained CS model whose permutation and bounds to apply.
    clip:
        Forwarded to :func:`normalize_rows`.

    Returns
    -------
    numpy.ndarray
        The sorted, normalized window of shape ``(n, wl)``; row ``k`` of the
        output is original row ``model.permutation[k]``.
    """
    Sw = np.asarray(Sw, dtype=np.float64)
    if Sw.shape[0] != model.n_sensors:
        raise ValueError(
            f"window has {Sw.shape[0]} rows but model was trained on "
            f"{model.n_sensors} sensors"
        )
    # Permute first (a gather), then normalize with permuted bounds: one
    # pass over the data either way, but this order writes the output
    # contiguously.
    gathered = Sw[model.permutation]
    return normalize_rows(
        gathered,
        model.lower[model.permutation],
        model.upper[model.permutation],
        clip=clip,
        out=gathered,
    )

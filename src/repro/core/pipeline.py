"""End-to-end Correlation-wise Smoothing estimator.

:class:`CorrelationWiseSmoothing` ties the three stages together behind a
fit/transform interface:

* :meth:`~CorrelationWiseSmoothing.fit` runs the training stage on
  historical data and stores the :class:`~repro.core.model.CSModel`;
* :meth:`~CorrelationWiseSmoothing.transform` sorts and smooths a single
  window into one complex signature;
* :meth:`~CorrelationWiseSmoothing.transform_series` slides a ``(wl, ws)``
  window over a full sensor matrix and returns a matrix of signatures —
  the operation used to build ML feature sets in the paper's evaluation.

The helper :func:`signature_features` converts complex signatures into the
flat real feature vectors fed to the models (real parts followed by
imaginary parts, or real only for the ``-R`` variants of Figure 4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import CSModel
from repro.core.smoothing import smooth, smooth_windows
from repro.core.sorting import sort_rows
from repro.core.training import train_cs_model

__all__ = ["CorrelationWiseSmoothing", "signature_features"]


def signature_features(
    signatures: np.ndarray, *, real_only: bool = False
) -> np.ndarray:
    """Flatten complex signatures into real ML feature vectors.

    Parameters
    ----------
    signatures:
        Complex array of shape ``(l,)`` or ``(num_windows, l)``.
    real_only:
        When true, drop the imaginary (derivative) components — the ``-R``
        configuration studied in Section IV-C.

    Returns
    -------
    numpy.ndarray
        Float array of shape ``(..., l)`` if ``real_only`` else
        ``(..., 2*l)`` with layout ``[real | imag]``.
    """
    sigs = np.asarray(signatures)
    if real_only:
        return np.ascontiguousarray(sigs.real, dtype=np.float64)
    return np.concatenate([sigs.real, sigs.imag], axis=-1).astype(np.float64)


class CorrelationWiseSmoothing:
    """The CS signature method with a fit/transform API.

    Parameters
    ----------
    blocks:
        Number of signature blocks ``l``, or the string ``"all"`` to use
        one block per sensor (the paper's *CS-All* configuration).
    retrain:
        When true, :meth:`transform_series` re-runs the training stage on
        each input matrix before computing signatures instead of re-using
        the stored model.  This matches the paper's note that training may
        be repeated "whenever required", e.g. for out-of-band system-wide
        ODA where correlations drift.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CorrelationWiseSmoothing
    >>> rng = np.random.default_rng(0)
    >>> S = rng.random((8, 256))
    >>> cs = CorrelationWiseSmoothing(blocks=4).fit(S)
    >>> sig = cs.transform(S[:, :32])
    >>> sig.shape
    (4,)
    """

    def __init__(self, blocks: int | str = "all", *, retrain: bool = False):
        if isinstance(blocks, str):
            if blocks.lower() != "all":
                raise ValueError(f"blocks must be an int or 'all', got {blocks!r}")
            self.blocks: int | None = None
        else:
            blocks = int(blocks)
            if blocks < 1:
                raise ValueError("blocks must be >= 1")
            self.blocks = blocks
        self.retrain = bool(retrain)
        self.model: CSModel | None = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether a CS model is available."""
        return self.model is not None

    def _effective_blocks(self, n: int) -> int:
        l = n if self.blocks is None else self.blocks
        if l > n:
            raise ValueError(f"cannot form {l} blocks from {n} sensors")
        return l

    def _require_model(self) -> CSModel:
        if self.model is None:
            raise RuntimeError(
                "CS model not trained; call fit() or load a model first"
            )
        return self.model

    # ------------------------------------------------------------------
    def fit(
        self, S: np.ndarray, sensor_names: Sequence[str] | None = None
    ) -> "CorrelationWiseSmoothing":
        """Run the training stage on historical data ``S`` (shape (n, t))."""
        self.model = train_cs_model(S, sensor_names=sensor_names)
        return self

    def set_model(self, model: CSModel) -> "CorrelationWiseSmoothing":
        """Install a pre-trained (possibly shipped-in) CS model."""
        self.model = model
        return self

    # ------------------------------------------------------------------
    def sort(self, Sw: np.ndarray) -> np.ndarray:
        """Sorting stage only: normalized, permuted window (for viewing)."""
        return sort_rows(Sw, self._require_model())

    def transform(
        self, Sw: np.ndarray, *, prev_column: np.ndarray | None = None
    ) -> np.ndarray:
        """Compute the complex signature of a single window ``Sw``.

        Parameters
        ----------
        Sw:
            Window of shape ``(n, wl)`` in original row order.
        prev_column:
            Optional raw sample (original row order, shape ``(n,)``)
            immediately preceding the window, used for the first backward
            difference.
        """
        model = self._require_model()
        sorted_window = sort_rows(Sw, model)
        prev_sorted = None
        if prev_column is not None:
            prev_sorted = sort_rows(
                np.asarray(prev_column, dtype=np.float64).reshape(-1, 1), model
            )[:, 0]
        l = self._effective_blocks(model.n_sensors)
        return smooth(sorted_window, l, prev_column=prev_sorted)

    def transform_series(
        self,
        S: np.ndarray,
        wl: int,
        ws: int,
        *,
        exact_first_derivative: bool = True,
    ) -> np.ndarray:
        """Signatures for every sliding window of a full sensor matrix.

        Windowed execution routes through :mod:`repro.engine`: one sort
        pass over the matrix, then the prefix-sum smoothing kernel — no
        per-window Python loop.  The result is bit-identical to feeding
        the same samples through
        :class:`~repro.monitoring.streaming.OnlineSignatureStream` or
        :class:`~repro.engine.fleet.FleetSignatureEngine`.

        Parameters
        ----------
        S:
            Sensor matrix of shape ``(n, t)``.
        wl, ws:
            Aggregation window length and step, in samples.
        exact_first_derivative:
            When true (the default, matching online operation), windows
            with a preceding sample in ``S`` use it for their first
            backward difference.

        Returns
        -------
        numpy.ndarray
            Complex array of shape ``(num_windows, l)``.
        """
        if self.retrain or self.model is None:
            self.fit(S)
        model = self._require_model()
        sorted_data = sort_rows(S, model)
        l = self._effective_blocks(model.n_sensors)
        return smooth_windows(
            sorted_data, l, wl, ws, exact_first_derivative=exact_first_derivative
        )

    def fit_transform_series(
        self, S: np.ndarray, wl: int, ws: int
    ) -> np.ndarray:
        """Convenience: fit on ``S`` then transform its windows."""
        self.fit(S)
        return self.transform_series(S, wl, ws)

    # ------------------------------------------------------------------
    def signature_length(self, n: int | None = None) -> int:
        """Length ``l`` of produced signatures (blocks, not features)."""
        if n is None:
            n = self._require_model().n_sensors
        return self._effective_blocks(n)

    def feature_length(self, n: int | None = None, *, real_only: bool = False) -> int:
        """Length of the flat feature vector fed to ML models."""
        l = self.signature_length(n)
        return l if real_only else 2 * l

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        blocks = "all" if self.blocks is None else self.blocks
        fitted = "fitted" if self.is_fitted else "unfitted"
        return f"CorrelationWiseSmoothing(blocks={blocks}, {fitted})"

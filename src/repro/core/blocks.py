"""Blocking scheme of the smoothing stage (Equation 2).

The smoothing stage aggregates the ``n`` sorted sensor rows into ``l``
*blocks*, each covering a contiguous — and possibly partially overlapping —
range of rows.  In the paper's 1-indexed notation::

    b_i = 1 + floor((i - 1) * n / l)        e_i = ceil(i * n / l)

for block ``i`` in ``[1, l]``.  This module uses 0-indexed half-open
ranges: block ``j`` covers rows ``[start_j, end_j)`` with

    start_j = floor(j * n / l)              end_j = ceil((j + 1) * n / l)

which is the same set of rows.  Two properties the paper highlights are
preserved: when ``n % l != 0`` the ``n % l`` widened blocks are spread
uniformly across the signature by the periodicity of the modulo, and each
block maps to a well-defined sensor set, which keeps root-cause analysis
straightforward.
"""

from __future__ import annotations

import numpy as np

from repro.engine.windows import partition_bounds

__all__ = ["block_bounds", "block_widths", "block_sensor_map"]


def block_bounds(n: int, l: int) -> tuple[np.ndarray, np.ndarray]:
    """Start (inclusive) and end (exclusive) row indices of each block.

    The partition arithmetic lives in
    :func:`repro.engine.windows.partition_bounds` (the engine reuses it
    for time-axis sub-sampling as well); this wrapper keeps the paper's
    sensor-block vocabulary.

    Parameters
    ----------
    n:
        Number of sensor rows.
    l:
        Number of blocks; must satisfy ``1 <= l <= n``.

    Returns
    -------
    (starts, ends):
        Two integer arrays of shape ``(l,)``; block ``j`` aggregates sorted
        rows ``starts[j] : ends[j]``.
    """
    return partition_bounds(n, l)


def block_widths(n: int, l: int) -> np.ndarray:
    """Number of sensor rows aggregated by each block."""
    starts, ends = block_bounds(n, l)
    return ends - starts


def block_sensor_map(
    n: int, l: int, permutation: np.ndarray | None = None
) -> list[np.ndarray]:
    """Original sensor row indices aggregated into each block.

    Parameters
    ----------
    n, l:
        Row and block counts, as for :func:`block_bounds`.
    permutation:
        Optional CS permutation vector; when given, the returned indices
        refer to the *original* (pre-sort) rows, which is what root-cause
        analysis needs.  When omitted, sorted positions are returned.

    Returns
    -------
    list of numpy.ndarray
        ``l`` arrays; entry ``j`` lists the rows feeding block ``j``.
    """
    starts, ends = block_bounds(n, l)
    if permutation is not None:
        permutation = np.asarray(permutation, dtype=np.intp)
        if permutation.shape != (n,):
            raise ValueError(
                f"permutation shape {permutation.shape} does not match n={n}"
            )
        return [permutation[s:e].copy() for s, e in zip(starts, ends)]
    return [np.arange(s, e, dtype=np.intp) for s, e in zip(starts, ends)]

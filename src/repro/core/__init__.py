"""Core implementation of the Correlation-wise Smoothing (CS) method.

This package implements the paper's primary contribution: the three-stage
CS algorithm (training, sorting, smoothing) that turns a multi-dimensional
sensor matrix into compact, image-like complex-valued signatures.

Public entry points
-------------------
:class:`~repro.core.pipeline.CorrelationWiseSmoothing`
    End-to-end estimator: ``fit`` on historical data, ``transform`` windows
    into signatures.
:class:`~repro.core.model.CSModel`
    The trained artefact (permutation vector + normalization bounds) that
    can be persisted and shipped between systems.

Lower-level building blocks (``training``, ``sorting``, ``smoothing``,
``blocks``, ``scaling``) are exposed for users who want to compose the
stages themselves, e.g. to visualize sorted-but-unsmoothed data as in
Figure 2 of the paper.
"""

from repro.core.blocks import block_bounds, block_sensor_map, block_widths
from repro.core.model import CSModel
from repro.core.pipeline import CorrelationWiseSmoothing, signature_features
from repro.core.scaling import rescale_signature, rescale_signature_matrix
from repro.core.smoothing import smooth, smooth_windows
from repro.core.sorting import normalize_rows, sort_rows
from repro.core.training import (
    correlation_ordering,
    global_correlation,
    shifted_correlation_matrix,
    train_cs_model,
)

__all__ = [
    "CSModel",
    "CorrelationWiseSmoothing",
    "block_bounds",
    "block_sensor_map",
    "block_widths",
    "correlation_ordering",
    "global_correlation",
    "normalize_rows",
    "rescale_signature",
    "rescale_signature_matrix",
    "shifted_correlation_matrix",
    "signature_features",
    "smooth",
    "smooth_windows",
    "sort_rows",
    "train_cs_model",
]

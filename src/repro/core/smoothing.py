"""Smoothing stage of the CS algorithm (Section III-C.3, Equation 3).

The smoothing stage turns a sorted, normalized window into a complex
signature of ``l`` blocks:

* the **real part** of block *i* is the mean of the normalized sensor
  values over the block's rows and the whole window (the *static*
  description of the component), and
* the **imaginary part** is the same mean taken over the row-wise
  first-order backward finite differences (the *dynamic* description).

Differences are computed on the normalized data, which is equivalent to
normalizing the raw derivatives by each row's training range and keeps the
two parts on comparable scales.  When the sample preceding the window is
known (online operation) it can be supplied so the first column has a true
backward difference; otherwise that column's difference is defined as 0.

The implementation is a cumulative-sum reduction: ``O(wl * n)`` work as
stated in the paper, and ``O(n + l)`` beyond the single pass over the
window even though blocks may overlap.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import block_bounds

__all__ = ["smooth", "smooth_windows"]


def _block_means(row_means: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Mean of ``row_means`` over each ``[start, end)`` range via cumsum."""
    csum = np.concatenate(([0.0], np.cumsum(row_means)))
    widths = (ends - starts).astype(np.float64)
    return (csum[ends] - csum[starts]) / widths


def smooth(
    sorted_window: np.ndarray,
    l: int,
    *,
    prev_column: np.ndarray | None = None,
) -> np.ndarray:
    """Compute one complex CS signature from a sorted, normalized window.

    Parameters
    ----------
    sorted_window:
        Output of the sorting stage, shape ``(n, wl)`` with values in
        ``[0, 1]``.
    l:
        Number of signature blocks, ``1 <= l <= n``.
    prev_column:
        Optional vector of shape ``(n,)`` holding the (sorted, normalized)
        sample immediately before the window, used for the first backward
        difference.  Without it the first difference is 0.

    Returns
    -------
    numpy.ndarray
        Complex signature of shape ``(l,)``: ``real`` holds block/window
        means of values, ``imag`` block/window means of backward
        differences.
    """
    W = np.asarray(sorted_window, dtype=np.float64)
    if W.ndim != 2:
        raise ValueError(f"window must be 2-D, got shape {W.shape}")
    n, wl = W.shape
    if wl < 1:
        raise ValueError("window must contain at least one sample")
    starts, ends = block_bounds(n, l)

    # Row means of the values: one pass over the window.
    value_row_means = W.mean(axis=1)

    # Row means of backward differences telescope: mean(diff) equals
    # (last - first_reference) / wl, so no materialized diff matrix is
    # needed.  first_reference is prev_column when known, else the first
    # window column (making the first difference zero).
    if prev_column is not None:
        prev = np.asarray(prev_column, dtype=np.float64)
        if prev.shape != (n,):
            raise ValueError(
                f"prev_column shape {prev.shape} does not match window rows {n}"
            )
        deriv_row_means = (W[:, -1] - prev) / wl
    else:
        deriv_row_means = (W[:, -1] - W[:, 0]) / wl

    signature = np.empty(l, dtype=np.complex128)
    signature.real = _block_means(value_row_means, starts, ends)
    signature.imag = _block_means(deriv_row_means, starts, ends)
    return signature


def smooth_windows(
    sorted_data: np.ndarray,
    l: int,
    wl: int,
    ws: int,
    *,
    exact_first_derivative: bool = True,
) -> np.ndarray:
    """Compute signatures for every sliding window of a sorted matrix.

    Slides a window of length ``wl`` with step ``ws`` over the time axis of
    ``sorted_data`` (shape ``(n, t)``) and smooths each window.  Windows
    start at ``0, ws, 2*ws, ...`` and only complete windows are emitted.

    Parameters
    ----------
    sorted_data:
        Sorted, normalized sensor matrix of shape ``(n, t)``.
    l:
        Blocks per signature.
    wl:
        Aggregation window length in samples.
    ws:
        Step between successive windows in samples.
    exact_first_derivative:
        When true, windows that have a preceding sample in ``sorted_data``
        use it for the first backward difference (matching Equation 3,
        where the derivative matrix is computed from the full ``S``).

    Returns
    -------
    numpy.ndarray
        Complex array of shape ``(num_windows, l)``; row ``k`` is the
        signature of the window starting at sample ``k * ws``.
    """
    X = np.asarray(sorted_data, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"sorted data must be 2-D, got shape {X.shape}")
    n, t = X.shape
    if wl < 1 or ws < 1:
        raise ValueError("wl and ws must be positive")
    if t < wl:
        return np.empty((0, l), dtype=np.complex128)
    num = (t - wl) // ws + 1
    starts_t = np.arange(num) * ws
    bstarts, bends = block_bounds(n, l)

    # Row-level prefix sums over time let us take every window mean without
    # touching the data once per window: O(n*t) total.
    csum_t = np.concatenate(
        [np.zeros((n, 1)), np.cumsum(X, axis=1)], axis=1
    )
    # value_row_means[w, row] = mean of X[row, s:s+wl]
    value_row_means = (csum_t[:, starts_t + wl] - csum_t[:, starts_t]).T / wl

    last_cols = X[:, starts_t + wl - 1].T  # (num, n)
    if exact_first_derivative:
        ref_idx = np.maximum(starts_t - 1, 0)
        first_refs = np.where(
            (starts_t > 0)[:, None], X[:, ref_idx].T, X[:, starts_t].T
        )
    else:
        first_refs = X[:, starts_t].T
    deriv_row_means = (last_cols - first_refs) / wl

    # Block reduction across rows for all windows at once.
    csum_rows_val = np.concatenate(
        [np.zeros((num, 1)), np.cumsum(value_row_means, axis=1)], axis=1
    )
    csum_rows_der = np.concatenate(
        [np.zeros((num, 1)), np.cumsum(deriv_row_means, axis=1)], axis=1
    )
    widths = (bends - bstarts).astype(np.float64)
    out = np.empty((num, l), dtype=np.complex128)
    out.real = (csum_rows_val[:, bends] - csum_rows_val[:, bstarts]) / widths
    out.imag = (csum_rows_der[:, bends] - csum_rows_der[:, bstarts]) / widths
    return out

"""Smoothing stage of the CS algorithm (Section III-C.3, Equation 3).

The smoothing stage turns a sorted, normalized window into a complex
signature of ``l`` blocks:

* the **real part** of block *i* is the mean of the normalized sensor
  values over the block's rows and the whole window (the *static*
  description of the component), and
* the **imaginary part** is the same mean taken over the row-wise
  first-order backward finite differences (the *dynamic* description).

Differences are computed on the normalized data, which is equivalent to
normalizing the raw derivatives by each row's training range and keeps the
two parts on comparable scales.  When the sample preceding the window is
known (online operation) it can be supplied so the first column has a true
backward difference; otherwise that column's difference is defined as 0.

Windowed execution routes through :mod:`repro.engine`:
:func:`smooth_windows` is a thin validating wrapper around the batched
kernel :func:`repro.engine.batch.smooth_windows_batch`, and the block
reduction of :func:`smooth` is the engine's prefix-sum
:func:`~repro.engine.windows.segment_means`.  Complexity is unchanged
from the paper: ``O(wl * n)`` per window series, ``O(n + l)`` beyond the
single pass even though blocks may overlap.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import block_bounds
from repro.engine.batch import smooth_windows_batch
from repro.engine.windows import segment_means

__all__ = ["smooth", "smooth_windows"]


def smooth(
    sorted_window: np.ndarray,
    l: int,
    *,
    prev_column: np.ndarray | None = None,
) -> np.ndarray:
    """Compute one complex CS signature from a sorted, normalized window.

    Parameters
    ----------
    sorted_window:
        Output of the sorting stage, shape ``(n, wl)`` with values in
        ``[0, 1]``.
    l:
        Number of signature blocks, ``1 <= l <= n``.
    prev_column:
        Optional vector of shape ``(n,)`` holding the (sorted, normalized)
        sample immediately before the window, used for the first backward
        difference.  Without it the first difference is 0.

    Returns
    -------
    numpy.ndarray
        Complex signature of shape ``(l,)``: ``real`` holds block/window
        means of values, ``imag`` block/window means of backward
        differences.
    """
    W = np.asarray(sorted_window, dtype=np.float64)
    if W.ndim != 2:
        raise ValueError(f"window must be 2-D, got shape {W.shape}")
    n, wl = W.shape
    if wl < 1:
        raise ValueError("window must contain at least one sample")
    starts, ends = block_bounds(n, l)

    # Row means of the values: one pass over the window.
    value_row_means = W.mean(axis=1)

    # Row means of backward differences telescope: mean(diff) equals
    # (last - first_reference) / wl, so no materialized diff matrix is
    # needed.  first_reference is prev_column when known, else the first
    # window column (making the first difference zero).
    if prev_column is not None:
        prev = np.asarray(prev_column, dtype=np.float64)
        if prev.shape != (n,):
            raise ValueError(
                f"prev_column shape {prev.shape} does not match window rows {n}"
            )
        deriv_row_means = (W[:, -1] - prev) / wl
    else:
        deriv_row_means = (W[:, -1] - W[:, 0]) / wl

    signature = np.empty(l, dtype=np.complex128)
    signature.real = segment_means(value_row_means, starts, ends)
    signature.imag = segment_means(deriv_row_means, starts, ends)
    return signature


def smooth_windows(
    sorted_data: np.ndarray,
    l: int,
    wl: int,
    ws: int,
    *,
    exact_first_derivative: bool = True,
) -> np.ndarray:
    """Compute signatures for every sliding window of a sorted matrix.

    Slides a window of length ``wl`` with step ``ws`` over the time axis of
    ``sorted_data`` (shape ``(n, t)``) and smooths each window.  Windows
    start at ``0, ws, 2*ws, ...`` and only complete windows are emitted.
    This is the 2-D entry point of the engine's
    :func:`~repro.engine.batch.smooth_windows_batch` kernel, which also
    serves stacked fleets of matrices.

    Parameters
    ----------
    sorted_data:
        Sorted, normalized sensor matrix of shape ``(n, t)``.
    l:
        Blocks per signature.
    wl:
        Aggregation window length in samples.
    ws:
        Step between successive windows in samples.
    exact_first_derivative:
        When true, windows that have a preceding sample in ``sorted_data``
        use it for the first backward difference (matching Equation 3,
        where the derivative matrix is computed from the full ``S``).

    Returns
    -------
    numpy.ndarray
        Complex array of shape ``(num_windows, l)``; row ``k`` is the
        signature of the window starting at sample ``k * ws``.
    """
    X = np.asarray(sorted_data, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"sorted data must be 2-D, got shape {X.shape}")
    return smooth_windows_batch(
        X, l, wl, ws, exact_first_derivative=exact_first_derivative
    )

"""Training stage of the CS algorithm (Section III-C.1, Algorithm 1).

Given a historical sensor matrix ``S`` of shape ``(n, t)`` the training
stage computes:

* the **shifted Pearson correlation matrix**  ``rho[i, j] = pearson(S_i, S_j) + 1``
  (Equation 1, left), so every coefficient lies in ``[0, 2]``;
* the **global correlation coefficient** of each row,
  ``rho_i = mean_{j != i} rho[i, j]`` (Equation 1, right), which measures
  how well row *i* describes the whole system;
* the greedy **permutation vector** of Algorithm 1: start from the row with
  maximal global coefficient and repeatedly append the remaining row that
  maximizes ``rho[k, last] * rho_k``.

All heavy lifting is vectorized: the correlation matrix is one BLAS matmul
(complexity ``O(n^2 t)``, dominating this stage exactly as the paper
states) and each greedy step is a single masked ``argmax`` over ``n``
candidates, for ``O(n^2)`` total selection cost.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import CSModel

__all__ = [
    "shifted_correlation_matrix",
    "global_correlation",
    "correlation_ordering",
    "train_cs_model",
]


def shifted_correlation_matrix(S: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlations of the rows of ``S``, shifted by +1.

    Rows with zero variance (constant sensors) have an undefined Pearson
    coefficient; following the neutral-element convention we assign them a
    raw correlation of 0 with every other row (shifted value 1), so they
    neither attract nor repel during ordering.  The diagonal is the exact
    self-correlation (shifted value 2) for non-constant rows.

    Parameters
    ----------
    S:
        Sensor matrix of shape ``(n, t)`` with ``t >= 2``.

    Returns
    -------
    numpy.ndarray
        Symmetric matrix of shape ``(n, n)`` with entries in ``[0, 2]``.
    """
    S = np.asarray(S, dtype=np.float64)
    if S.ndim != 2:
        raise ValueError(f"sensor matrix must be 2-D, got shape {S.shape}")
    n, t = S.shape
    if t < 2:
        raise ValueError("need at least two time-stamps to correlate rows")

    centered = S - S.mean(axis=1, keepdims=True)
    # Row standard deviations; constant rows get sigma == 0.
    sigma = np.sqrt(np.einsum("ij,ij->i", centered, centered))
    cov = centered @ centered.T
    denom = np.outer(sigma, sigma)
    constant = sigma == 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = np.where(denom > 0.0, cov / np.where(denom > 0.0, denom, 1.0), 0.0)
    # Clip tiny numerical excursions outside [-1, 1] before shifting.
    np.clip(rho, -1.0, 1.0, out=rho)
    rho += 1.0
    # Constant rows: neutral correlation with everything, including self.
    if constant.any():
        rho[constant, :] = 1.0
        rho[:, constant] = 1.0
    return rho


def global_correlation(rho: np.ndarray) -> np.ndarray:
    """Global correlation coefficient of each row (Equation 1, right).

    ``rho_i`` is the mean of the shifted correlations of row *i* with every
    *other* row; the self-correlation on the diagonal is excluded.

    Parameters
    ----------
    rho:
        Shifted correlation matrix from :func:`shifted_correlation_matrix`.

    Returns
    -------
    numpy.ndarray
        Vector of shape ``(n,)`` with entries in ``[0, 2]``.
    """
    rho = np.asarray(rho, dtype=np.float64)
    n = rho.shape[0]
    if rho.shape != (n, n):
        raise ValueError(f"correlation matrix must be square, got {rho.shape}")
    if n == 1:
        # A single row trivially describes the whole system.
        return np.array([2.0])
    return (rho.sum(axis=1) - np.diagonal(rho)) / (n - 1)


def correlation_ordering(
    rho: np.ndarray, rho_global: np.ndarray | None = None
) -> np.ndarray:
    """Greedy chain ordering of sensor rows (Algorithm 1 of the paper).

    Starting from the row with the maximal global coefficient, repeatedly
    select the unused row ``k`` that maximizes
    ``rho[k, last] * rho_global[k]`` where ``last`` is the row appended most
    recently.  Ties are broken by the lowest row index, which makes the
    ordering deterministic.

    Parameters
    ----------
    rho:
        Shifted correlation matrix, shape ``(n, n)``.
    rho_global:
        Optional precomputed global coefficients; computed from ``rho``
        when omitted.

    Returns
    -------
    numpy.ndarray
        Permutation vector ``p`` of shape ``(n,)``.
    """
    rho = np.asarray(rho, dtype=np.float64)
    n = rho.shape[0]
    if rho_global is None:
        rho_global = global_correlation(rho)
    else:
        rho_global = np.asarray(rho_global, dtype=np.float64)
        if rho_global.shape != (n,):
            raise ValueError("rho_global shape does not match rho")

    p = np.empty(n, dtype=np.intp)
    remaining = np.ones(n, dtype=bool)
    # numpy argmax returns the first (lowest-index) maximum, which gives us
    # deterministic tie-breaking for free.
    last = int(np.argmax(rho_global))
    p[0] = last
    remaining[last] = False
    neg_inf = -np.inf
    for step in range(1, n):
        scores = rho[last] * rho_global
        scores = np.where(remaining, scores, neg_inf)
        last = int(np.argmax(scores))
        p[step] = last
        remaining[last] = False
    return p


def train_cs_model(
    S: np.ndarray, sensor_names: Sequence[str] | None = None
) -> CSModel:
    """Run the full training stage on a historical sensor matrix.

    Computes the correlation structure, the Algorithm 1 permutation and the
    per-row min/max bounds, returning a reusable :class:`CSModel`.

    Parameters
    ----------
    S:
        Historical sensor matrix of shape ``(n, t)``.
    sensor_names:
        Optional names of the ``n`` rows, stored in the model to support
        root-cause analysis.

    Returns
    -------
    CSModel
    """
    S = np.asarray(S, dtype=np.float64)
    if S.ndim != 2:
        raise ValueError(f"sensor matrix must be 2-D, got shape {S.shape}")
    if not np.isfinite(S).all():
        raise ValueError("sensor matrix contains NaN or infinite values; "
                         "align and interpolate the data first")
    rho = shifted_correlation_matrix(S)
    rho_global = global_correlation(rho)
    p = correlation_ordering(rho, rho_global)
    return CSModel(
        permutation=p,
        lower=S.min(axis=1),
        upper=S.max(axis=1),
        sensor_names=tuple(sensor_names) if sensor_names is not None else None,
    )

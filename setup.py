"""Setup shim for editable installs.

Package metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on minimal environments where the
``wheel`` package is unavailable (setuptools' PEP 660 editable path
imports ``wheel.wheelfile`` and a ``bdist_wheel`` command from it).  On
such environments the shims below provide the few pieces setuptools
actually needs — a pure-lib tag, the ``WHEEL`` file, egg-info to
dist-info conversion and a RECORD-writing zip — without touching the
environment (nothing is installed; the shims live only in this build
process).  When the real ``wheel`` package is importable the shims stay
out of the way entirely.
"""

from __future__ import annotations

import base64
import hashlib
import os
import shutil
import sys
import zipfile

from setuptools import setup

_TAG = ("py3", "none", "any")


def _have_wheel_pkg() -> bool:
    try:
        import wheel.wheelfile  # noqa: F401
    except ImportError:
        return False
    return True


def _make_shims():
    """Build the bdist_wheel command + wheel.wheelfile module stand-ins."""
    import types

    from distutils.core import Command

    class WheelFile(zipfile.ZipFile):
        """Zip that appends a PEP 376 RECORD on close (wheel-pkg subset)."""

        def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
            super().__init__(file, mode, compression=compression)
            stem = os.path.basename(os.fspath(file)).split(".whl")[0]
            name, version = stem.split("-")[:2]
            self._record_path = f"{name}-{version}.dist-info/RECORD"
            self._records: list[str] = []

        def _record(self, arcname: str, data: bytes) -> None:
            digest = base64.urlsafe_b64encode(
                hashlib.sha256(data).digest()
            ).rstrip(b"=").decode("ascii")
            self._records.append(f"{arcname},sha256={digest},{len(data)}")

        def writestr(self, zinfo_or_arcname, data, *args, **kwargs):
            super().writestr(zinfo_or_arcname, data, *args, **kwargs)
            arcname = getattr(zinfo_or_arcname, "filename", zinfo_or_arcname)
            if isinstance(data, str):
                data = data.encode("utf-8")
            self._record(arcname, data)

        def write(self, filename, arcname=None, *args, **kwargs):
            super().write(filename, arcname, *args, **kwargs)
            with open(filename, "rb") as fh:
                self._record(arcname or filename, fh.read())

        def write_files(self, base_dir):
            for root, _dirs, files in os.walk(base_dir):
                for fname in sorted(files):
                    path = os.path.join(root, fname)
                    self.write(path, os.path.relpath(path, base_dir))

        def close(self):
            if self.mode != "r" and self._records:
                lines = self._records + [f"{self._record_path},,"]
                self._records = []
                super().writestr(self._record_path, "\n".join(lines) + "\n")
            super().close()

    class bdist_wheel(Command):
        """The three entry points setuptools' editable path calls."""

        description = "minimal bdist_wheel stand-in (editable installs only)"
        user_options: list = []

        def initialize_options(self):
            pass

        def finalize_options(self):
            pass

        def run(self):  # pragma: no cover - full wheels need the real pkg
            raise RuntimeError(
                "building distributable wheels requires the 'wheel' package; "
                "this shim only supports editable installs"
            )

        def get_tag(self):
            return _TAG

        def write_wheelfile(self, dist_info_dir):
            content = (
                "Wheel-Version: 1.0\n"
                "Generator: repro-cs setup shim\n"
                "Root-Is-Purelib: true\n"
                f"Tag: {'-'.join(_TAG)}\n"
            )
            with open(os.path.join(dist_info_dir, "WHEEL"), "w") as fh:
                fh.write(content)

        def egg2dist(self, egg_info_dir, dist_info_dir):
            os.makedirs(dist_info_dir, exist_ok=True)
            shutil.copyfile(
                os.path.join(egg_info_dir, "PKG-INFO"),
                os.path.join(dist_info_dir, "METADATA"),
            )
            entry_points = os.path.join(egg_info_dir, "entry_points.txt")
            if os.path.exists(entry_points):
                shutil.copyfile(
                    entry_points,
                    os.path.join(dist_info_dir, "entry_points.txt"),
                )

    wheelfile_mod = types.ModuleType("wheel.wheelfile")
    wheelfile_mod.WheelFile = WheelFile
    wheel_mod = types.ModuleType("wheel")
    wheel_mod.wheelfile = wheelfile_mod
    return bdist_wheel, wheel_mod, wheelfile_mod


if _have_wheel_pkg():
    setup()
else:
    _bdist_wheel, _wheel_mod, _wheelfile_mod = _make_shims()
    sys.modules.setdefault("wheel", _wheel_mod)
    sys.modules.setdefault("wheel.wheelfile", _wheelfile_mod)
    setup(cmdclass={"bdist_wheel": _bdist_wheel})
